// Result model for a SafeFlow run: warnings (unmonitored non-core
// accesses), errors (critical-data dependencies, split into data and
// control dependence — the latter being the paper's manual-review /
// false-positive class), and restriction violations.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/restrictions.h"
#include "support/diagnostics.h"
#include "support/source_location.h"

namespace safeflow::analysis {

/// Paper §3.3: "a warning is reported for each unsafe access to shared
/// memory".
struct UnsafeAccessWarning {
  support::SourceLocation location;
  std::string function;
  int region = -1;
  std::string region_name;
  /// Byte range of the access within the region, when statically known.
  std::int64_t offset_lo = 0;
  std::int64_t offset_hi = 0;
  bool offset_known = false;
};

/// Paper §3.3: "an error is reported when the analysis detects dependency
/// of critical data ... on unmonitored non-core values".
struct CriticalDependencyError {
  enum class Kind {
    kData,     // genuine value dependency
    kControl,  // control dependence only — the paper's false-positive class
  };
  Kind kind = Kind::kData;
  support::SourceLocation assert_location;
  std::string function;
  std::string critical_value;
  std::set<int> regions;
  std::vector<std::string> region_names;
  /// Unmonitored loads the critical value (transitively) depends on.
  std::vector<support::SourceLocation> source_loads;
};

struct SafeFlowReport {
  std::vector<UnsafeAccessWarning> warnings;
  std::vector<CriticalDependencyError> errors;
  std::vector<RestrictionViolation> restriction_violations;
  /// Number of assert(safe(x)) checks evaluated.
  std::size_t asserts_checked = 0;
  /// Runtime checks the tool requires at bootstrap (paper's InitCheck).
  std::vector<std::string> required_runtime_checks;
  /// Phases whose analysis budget tripped (--time-budget/--step-budget).
  /// Non-empty means the run degraded: findings above are still valid but
  /// the absence of a finding proves nothing. Empty on a full run, and
  /// then absent from every rendering.
  std::vector<std::string> degraded_phases;
  /// Input files the front end could not fully parse (per-file isolation:
  /// analysis continued on the declarations that survived recovery).
  std::vector<std::string> failed_files;

  [[nodiscard]] std::size_t dataErrorCount() const;
  [[nodiscard]] std::size_t controlErrorCount() const;

  /// Drops entries that are duplicates of an earlier entry, keyed by
  /// file:line:category:message content. Headers included by several
  /// translation units can make each including TU emit the identical
  /// warning/violation; one finding per distinct location+message is
  /// enough for consumers. First occurrence wins, relative order of the
  /// survivors is unchanged. The driver calls this once before
  /// rendering; the supervisor applies the same key when merging
  /// per-worker reports.
  void deduplicate(const support::SourceManager& sm);

  /// Human-readable rendering (locations resolved by the caller's source
  /// manager via pre-rendered strings inside the entries).
  [[nodiscard]] std::string render(
      const support::SourceManager& sm) const;

  /// Graphviz DOT rendering of the value-flow graph behind the reported
  /// dependencies: non-core regions -> unmonitored loads -> critical
  /// values, with control-only flows dashed. This is the artefact the
  /// paper's §4 uses for manual review of potential false positives.
  [[nodiscard]] std::string renderValueFlowDot(
      const support::SourceManager& sm) const;

  /// Machine-readable JSON rendering of the whole report (snake_case
  /// keys, schema_version field). When `stats_json` is non-empty it must
  /// be a pre-rendered JSON object (SafeFlowStats::renderJson()); it is
  /// embedded verbatim as the report's "stats" member so `--json` output
  /// carries the same stats object `--stats-json` writes. When
  /// `worker_protocol` is set (the `--worker` path only) the document
  /// additionally carries "required_runtime_checks", which the public
  /// schema omits; the supervisor needs it to reproduce the in-process
  /// text report from per-worker documents. `telemetry_json`, when
  /// non-empty, must be a pre-rendered JSON object and is embedded as
  /// the document's "telemetry" member (worker protocol only): clock
  /// epoch, resource usage, and trace spans the supervisor stitches
  /// into the merged timeline (DESIGN.md §13).
  [[nodiscard]] std::string renderJson(
      const support::SourceManager& sm,
      const std::string& stats_json = {},
      bool worker_protocol = false,
      const std::string& telemetry_json = {}) const;
};

}  // namespace safeflow::analysis
