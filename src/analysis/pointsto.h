// Andersen-style inclusion-based points-to analysis — the real successor
// to the ad-hoc alias pass and the stand-in for the paper's Data
// Structure Analysis (DSA). A constraint graph (addr-of / copy / load /
// store / field-offset) is generated from the SSA IR and solved with a
// worklist plus periodic Tarjan SCC condensation: copy cycles (the
// classic worklist killer) collapse onto one representative node, so the
// solve stays near-linear on the deep phi/copy chains embedded control
// code produces.
//
// Field sensitivity is byte-offset based: every struct/union/region base
// object can grow sub-object "cells" identified by (byte offset, size)
// within the base. Constant pointer arithmetic (`p + k`) resolves to the
// cell at the right offset instead of collapsing to the whole object;
// arrays still collapse element-wise (offsets are normalized modulo the
// element stride — the paper treats an array in shared memory as one
// unit); a constant offset that lands outside a non-array base resolves
// to the unknown object. Union members become distinct overlapping cells
// (per Miné's field-sensitive model) linked so stores through one
// member's cell are visible through the others, rather than punting the
// whole union to unknown.
//
// Degradation contract (AnalysisBudget): if the budget trips mid-solve,
// every tracked pointer additionally points at the unknown object —
// results only ever widen, never tighten.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/shm_regions.h"
#include "ir/callgraph.h"
#include "ir/ir.h"
#include "support/limits.h"

namespace safeflow::analysis {

using ObjId = int;

struct PointsToOptions {
  bool field_sensitive = true;
};

class PointsToSolver {
 public:
  /// Mirrors AliasAnalysis::ObjKind (the adapter static_casts between
  /// them); keep the enumerator order in sync.
  enum class ObjKind { kAlloca, kGlobal, kRegion, kField, kUnknown };

  PointsToSolver(const ir::Module& module, const ShmRegionTable& regions,
                 const ir::CallGraph& callgraph, PointsToOptions options,
                 support::AnalysisBudget* budget);

  /// Generates constraints and solves to a fixpoint (or until the budget
  /// trips, after which every pointer also points at unknown). Emits the
  /// pointsto.* counters.
  void solve();

  [[nodiscard]] const std::set<ObjId>& pointsTo(const ir::Value* v) const;

  [[nodiscard]] int regionOf(ObjId obj) const;
  [[nodiscard]] std::vector<ObjId> objectsOfRegion(int region_id) const;
  /// (byte offset within the root object, size). Cells report their
  /// exact resolved extent; base objects report (0, object size).
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> extentOf(
      ObjId obj) const;
  [[nodiscard]] bool isUnknown(ObjId obj) const { return obj == unknown_; }
  [[nodiscard]] ObjId parentOf(ObjId obj) const;
  [[nodiscard]] std::string describe(ObjId obj) const;
  [[nodiscard]] std::size_t objectCount() const { return objects_.size(); }
  [[nodiscard]] ObjKind kindOf(ObjId obj) const {
    return objects_[static_cast<std::size_t>(obj)].kind;
  }
  [[nodiscard]] const ir::Value* anchorOf(ObjId obj) const {
    return objects_[static_cast<std::size_t>(obj)].anchor;
  }
  [[nodiscard]] unsigned fieldIndexOf(ObjId obj) const {
    return objects_[static_cast<std::size_t>(obj)].field;
  }
  /// True when the budget tripped mid-solve (results were widened).
  [[nodiscard]] bool degraded() const { return degraded_; }
  /// Every value with a non-empty (expanded) points-to set — the feed
  /// for the adapter's precision counters.
  [[nodiscard]] const std::map<const ir::Value*, std::set<ObjId>>&
  allPointsTo() const {
    return exposed_;
  }

 private:
  struct Object {
    ObjKind kind = ObjKind::kUnknown;
    const ir::Value* anchor = nullptr;  // alloca inst or global var
    int region_id = -1;
    ObjId parent = -1;       // root base object (cells only)
    unsigned field = 0;      // declared field index (cells only)
    std::int64_t offset = 0;  // byte offset within the root (cells only)
    std::int64_t size = 0;
    // Root objects: element stride for array collapse (== size when the
    // object is not array-like) and the element layout for field naming.
    std::int64_t stride = 0;
    const cfront::StructType* layout = nullptr;
    std::string name;
    int node = -1;  // lazily-created content node
    // Cells of the same root whose byte ranges intersect this one
    // (union punning, misaligned views). Kept sorted/deduped.
    std::vector<ObjId> overlaps;
  };

  // A complex constraint attached to the pointer node whose points-to
  // set drives it.
  struct Constraint {
    enum class Kind {
      kLoad,   // dst ⊇ *this: content(o) → other for each o in pts
      kStore,  // *this ⊇ src: other → content(o) for each o in pts
      kOffset  // dst ⊇ this ⊕ delta: resolve cell at +delta, size bytes
    };
    Kind kind;
    int other;  // node index (dst for kLoad/kOffset, src for kStore)
    std::int64_t delta = 0;
    std::int64_t size = 0;
  };

  struct Node {
    std::set<int> succs;  // copy edges (inclusion: succ ⊇ this)
    std::set<ObjId> pts;
    // Difference propagation: objects added to pts but not yet pushed
    // through this node's constraints and copy edges. Each (constraint,
    // object) pair fires once; a full refire happens only on SCC merge.
    std::set<ObjId> pending;
    std::vector<Constraint> constraints;
  };

  int newNode();
  int valueNode(const ir::Value* v);
  int objNode(ObjId obj);
  int find(int n);
  /// Union-find merge of two representatives; returns the survivor.
  int unite(int a, int b);
  bool addEdge(int from, int to);
  bool addPts(int node, ObjId obj);

  ObjId internObject(Object obj);
  ObjId objectForAlloca(const ir::Instruction* alloca);
  ObjId objectForGlobal(const ir::GlobalVar* g);
  /// Resolves `obj ⊕ delta` addressing `size` bytes to a cell of obj's
  /// root (or the root itself, or unknown for out-of-bounds constants).
  ObjId resolveOffset(ObjId obj, std::int64_t delta, std::int64_t size);
  ObjId cellFor(ObjId root, std::int64_t offset, std::int64_t size);

  void buildRegionObjects();
  void genConstraints();
  void genInstruction(const ir::Instruction* inst);
  /// Tarjan SCC pass over the copy-edge graph; collapses cycles.
  void condense();
  /// Worklist propagation; returns true when a complex constraint added
  /// a new copy edge (the graph needs re-condensing).
  bool propagate();
  void degrade();
  void finalize();

  const ir::Module& module_;
  const ShmRegionTable& regions_;
  const ir::CallGraph& callgraph_;
  PointsToOptions options_;
  support::AnalysisBudget* budget_ = nullptr;

  std::vector<Object> objects_;
  std::vector<Node> nodes_;
  std::vector<int> rep_;  // union-find forest over nodes_
  std::map<const ir::Value*, int> value_nodes_;
  std::map<const ir::Value*, ObjId> value_objects_;
  std::map<std::tuple<ObjId, std::int64_t, std::int64_t>, ObjId> cells_;
  std::map<int, ObjId> region_objects_;
  ObjId unknown_ = -1;

  std::set<int> worklist_;
  bool live_ = true;
  bool degraded_ = false;
  bool edges_dirty_ = false;

  // Final per-value view (points-to sets expanded with overlap siblings).
  std::map<const ir::Value*, std::set<ObjId>> exposed_;
  std::set<ObjId> empty_;

  // Counter feeds for --stats-json (pointsto.* namespace).
  std::size_t n_constraints_ = 0;
  std::size_t n_collapsed_ = 0;
  std::size_t n_iterations_ = 0;
  std::size_t n_cells_ = 0;
};

}  // namespace safeflow::analysis
