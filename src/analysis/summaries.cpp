#include "analysis/summaries.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "analysis/alias.h"

namespace safeflow::analysis {

namespace {

void hashBytes(support::Fnv1a& h, std::string_view s) { hashToken(h, s); }

void hashNum(support::Fnv1a& h, std::int64_t v) {
  hashBytes(h, std::to_string(v));
}

void hashUNum(support::Fnv1a& h, std::uint64_t v) {
  hashBytes(h, std::to_string(v));
}

}  // namespace

// ---------------------------------------------------------------------------
// Positional value naming
// ---------------------------------------------------------------------------

ValueIndex::ValueIndex(const ir::Function& fn) {
  for (const auto& arg : fn.args()) {
    ids_[arg.get()] = static_cast<int>(values_.size());
    values_.push_back(arg.get());
  }
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      ids_[inst.get()] = static_cast<int>(values_.size());
      values_.push_back(inst.get());
    }
  }
}

int ValueIndex::idOf(const ir::Value* v) const {
  const auto it = ids_.find(v);
  return it == ids_.end() ? -1 : it->second;
}

ModuleIndex::ModuleIndex(const ir::Module& module) {
  for (const auto& fn : module.functions()) {
    by_name_[fn->name()] = fn.get();
    if (!fn->isDefined()) continue;
    const auto [it, inserted] = indexes_.emplace(fn.get(), ValueIndex(*fn));
    const auto& values = it->second.values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      owners_[values[i]] = {fn.get(), static_cast<int>(i)};
    }
  }
}

const ValueIndex& ModuleIndex::of(const ir::Function& fn) const {
  const auto it = indexes_.find(&fn);
  return it == indexes_.end() ? empty_ : it->second;
}

std::pair<const ir::Function*, int> ModuleIndex::locate(
    const ir::Value* v) const {
  const auto it = owners_.find(v);
  return it == owners_.end() ? std::pair<const ir::Function*, int>{nullptr, -1}
                             : it->second;
}

const ir::Value* ModuleIndex::resolve(const std::string& fn_name,
                                      int id) const {
  const ir::Function* fn = function(fn_name);
  if (fn == nullptr || id < 0) return nullptr;
  const auto& values = of(*fn).values();
  if (static_cast<std::size_t>(id) >= values.size()) return nullptr;
  return values[static_cast<std::size_t>(id)];
}

const ir::Function* ModuleIndex::function(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// Canonical hashing
// ---------------------------------------------------------------------------

void hashType(const ir::Type* type, support::Fnv1a& h, int depth) {
  if (type == nullptr) {
    hashBytes(h, "t:null");
    return;
  }
  hashNum(h, static_cast<int>(type->kind()));
  hashUNum(h, type->size());
  // Beyond the depth limit only kind+size are observable; a deeper layout
  // edit that matters to an analysis necessarily changes a size or field
  // offset within the hashed depth.
  if (depth >= 4) return;
  switch (type->kind()) {
    case cfront::Type::Kind::kInteger:
      hashNum(h,
              static_cast<const cfront::IntegerType*>(type)->isSigned() ? 1
                                                                        : 0);
      return;
    case cfront::Type::Kind::kPointer:
      hashType(static_cast<const cfront::PointerType*>(type)->pointee(), h,
               depth + 1);
      return;
    case cfront::Type::Kind::kArray: {
      const auto* at = static_cast<const cfront::ArrayType*>(type);
      hashUNum(h, at->count());
      hashType(at->element(), h, depth + 1);
      return;
    }
    case cfront::Type::Kind::kStruct: {
      const auto* st = static_cast<const cfront::StructType*>(type);
      hashBytes(h, st->name());
      for (const auto& f : st->fields()) {
        hashBytes(h, f.name);
        hashUNum(h, f.offset);
        hashType(f.type, h, depth + 1);
      }
      return;
    }
    case cfront::Type::Kind::kFunction: {
      const auto* ft = static_cast<const cfront::FunctionType*>(type);
      hashType(ft->returnType(), h, depth + 1);
      for (const auto* p : ft->params()) hashType(p, h, depth + 1);
      hashNum(h, ft->isVariadic() ? 1 : 0);
      return;
    }
    default:
      return;
  }
}

namespace {

void hashOperand(const ir::Value* v, const ValueIndex& vi,
                 support::Fnv1a& h) {
  switch (v->kind()) {
    case ir::Value::Kind::kConstantInt:
      hashBytes(h, "ci");
      hashNum(h, static_cast<const ir::ConstantInt*>(v)->value());
      hashType(v->type(), h);
      return;
    case ir::Value::Kind::kConstantFloat: {
      // %a prints the exact bit pattern, so two different constants can
      // never hash alike the way rounded decimal could make them.
      char buf[48];
      std::snprintf(buf, sizeof buf, "%a",
                    static_cast<const ir::ConstantFloat*>(v)->value());
      hashBytes(h, "cf");
      hashBytes(h, buf);
      return;
    }
    case ir::Value::Kind::kConstantString:
      hashBytes(h, "cs");
      hashBytes(h, static_cast<const ir::ConstantString*>(v)->text());
      return;
    case ir::Value::Kind::kGlobalVar:
      hashBytes(h, "g");
      hashBytes(h, v->name());
      hashType(static_cast<const ir::GlobalVar*>(v)->valueType(), h);
      return;
    case ir::Value::Kind::kFunction:
      hashBytes(h, "f");
      hashBytes(h, v->name());
      return;
    case ir::Value::Kind::kUndef:
      hashBytes(h, "undef");
      return;
    default:
      // Function-local argument or instruction: positional reference.
      hashBytes(h, "v");
      hashNum(h, vi.idOf(v));
      return;
  }
}

}  // namespace

void hashFunction(const ir::Function& fn, support::Fnv1a& h) {
  const ValueIndex vi(fn);
  hashBytes(h, "fn");
  hashBytes(h, fn.name());
  hashNum(h, fn.annotations.is_shminit ? 1 : 0);
  hashNum(h, fn.annotations.is_monitor ? 1 : 0);
  hashType(fn.functionType(), h);
  for (const auto& arg : fn.args()) hashType(arg->type(), h);

  std::map<const ir::BasicBlock*, int> block_ids;
  int next_block = 0;
  for (const auto& bb : fn.blocks()) block_ids[bb.get()] = next_block++;

  for (const auto& bb : fn.blocks()) {
    hashBytes(h, "b");
    hashNum(h, block_ids[bb.get()]);
    for (const auto& inst : bb->instructions()) {
      hashNum(h, static_cast<int>(inst->opcode()));
      hashType(inst->type(), h);
      switch (inst->opcode()) {
        case ir::Opcode::kAlloca:
          hashType(inst->allocated_type, h);
          break;
        case ir::Opcode::kBinOp:
          hashNum(h, static_cast<int>(inst->bin_op));
          break;
        case ir::Opcode::kUnOp:
          hashNum(h, static_cast<int>(inst->un_op));
          break;
        case ir::Opcode::kCmp:
          hashNum(h, static_cast<int>(inst->cmp_op));
          break;
        case ir::Opcode::kFieldAddr:
          hashNum(h, inst->field_index);
          break;
        case ir::Opcode::kCall:
          hashBytes(h, inst->direct_callee != nullptr
                           ? inst->direct_callee->name()
                           : std::string());
          break;
        default:
          break;
      }
      for (const ir::Value* op : inst->operands()) hashOperand(op, vi, h);
      for (const ir::BasicBlock* ref : inst->block_refs) {
        hashNum(h, block_ids[ref]);
      }
    }
  }
}

FunctionKeyMap computeFunctionKeys(const ir::Module& module,
                                   const ir::CallGraph& callgraph,
                                   std::string_view config_fingerprint) {
  (void)module;
  FunctionKeyMap keys;
  for (const auto& scc : callgraph.sccsBottomUp()) {
    std::vector<const ir::Function*> members;
    for (const ir::Function* fn : scc) {
      if (fn->isDefined() && !fn->isIntrinsic()) members.push_back(fn);
    }
    if (members.empty()) continue;
    std::sort(members.begin(), members.end(),
              [](const ir::Function* a, const ir::Function* b) {
                return a->name() < b->name();
              });
    const std::set<const ir::Function*> in_scc(scc.begin(), scc.end());

    support::Fnv1a component;
    hashBytes(component, config_fingerprint);
    // Callee keys go into a sorted set: the component hash must not
    // depend on callee iteration order, only on the set of dependencies.
    std::set<std::string> callee_keys;
    for (const ir::Function* fn : members) {
      hashBytes(component, fn->name());
      hashFunction(*fn, component);
      for (const ir::Function* callee : callgraph.callees(fn)) {
        if (in_scc.count(callee) != 0) continue;
        const auto it = keys.find(callee);
        callee_keys.insert(it != keys.end() ? it->second
                                            : "external:" + callee->name());
      }
    }
    for (const std::string& k : callee_keys) hashBytes(component, k);

    // Members of one SCC share the component hash (they are solved as a
    // unit) but need distinct store keys.
    const std::string component_hex = component.hex();
    for (const ir::Function* fn : members) {
      support::Fnv1a kh;
      kh.update(component_hex);
      kh.update("/");
      kh.update(fn->name());
      keys[fn] = kh.hex();
    }
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Blob codec
// ---------------------------------------------------------------------------

void BlobWriter::u64(std::uint64_t v) {
  out_ += "u ";
  out_ += std::to_string(v);
  out_ += '\n';
}

void BlobWriter::i64(std::int64_t v) {
  out_ += "i ";
  out_ += std::to_string(v);
  out_ += '\n';
}

void BlobWriter::str(std::string_view s) {
  out_ += "s ";
  out_ += std::to_string(s.size());
  out_ += '\n';
  out_.append(s);
}

std::string_view BlobReader::token() {
  if (!ok_) return {};
  const auto nl = data_.find('\n', pos_);
  if (nl == std::string_view::npos) {
    ok_ = false;
    return {};
  }
  const auto line = data_.substr(pos_, nl - pos_);
  pos_ = nl + 1;
  return line;
}

namespace {

bool parseDigits(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::uint64_t BlobReader::u64() {
  const auto line = token();
  std::uint64_t v = 0;
  if (!ok_ || line.size() < 2 || line[0] != 'u' || line[1] != ' ' ||
      !parseDigits(line.substr(2), &v)) {
    ok_ = false;
    return 0;
  }
  return v;
}

std::int64_t BlobReader::i64() {
  const auto line = token();
  if (!ok_ || line.size() < 2 || line[0] != 'i' || line[1] != ' ') {
    ok_ = false;
    return 0;
  }
  auto body = line.substr(2);
  const bool negative = !body.empty() && body[0] == '-';
  if (negative) body = body.substr(1);
  std::uint64_t mag = 0;
  if (!parseDigits(body, &mag)) {
    ok_ = false;
    return 0;
  }
  return negative ? -static_cast<std::int64_t>(mag)
                  : static_cast<std::int64_t>(mag);
}

std::string BlobReader::str() {
  const auto line = token();
  std::uint64_t len = 0;
  if (!ok_ || line.size() < 2 || line[0] != 's' || line[1] != ' ' ||
      !parseDigits(line.substr(2), &len) ||
      pos_ + len > data_.size()) {
    ok_ = false;
    return {};
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

// ---------------------------------------------------------------------------
// Stable object naming
// ---------------------------------------------------------------------------

std::string stableObjectName(const AliasAnalysis& alias,
                             const ModuleIndex& index, ObjId obj) {
  if (obj < 0) return "-";
  switch (alias.kindOf(obj)) {
    case AliasAnalysis::ObjKind::kUnknown:
      return "?";
    case AliasAnalysis::ObjKind::kRegion:
      return "R" + std::to_string(alias.regionOf(obj));
    case AliasAnalysis::ObjKind::kGlobal: {
      const ir::Value* g = alias.anchorOf(obj);
      return "G" + (g != nullptr ? g->name() : std::string("?"));
    }
    case AliasAnalysis::ObjKind::kAlloca: {
      const auto [fn, id] = index.locate(alias.anchorOf(obj));
      return "A" + (fn != nullptr ? fn->name() : std::string("?")) + "#" +
             std::to_string(id);
    }
    case AliasAnalysis::ObjKind::kField: {
      // Field index plus exact byte extent: the Andersen engine can hold
      // several offset cells behind one declared field index (byte
      // views, union punning), and names must stay injective.
      const auto [off, size] = alias.extentOf(obj);
      return stableObjectName(alias, index, alias.parentOf(obj)) + ".f" +
             std::to_string(alias.fieldIndexOf(obj)) + "@" +
             std::to_string(off) + ":" + std::to_string(size);
    }
  }
  return "?";
}

}  // namespace safeflow::analysis
