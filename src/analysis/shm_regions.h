// Shared-memory region model (paper §3.2.1). Regions are declared by
// shmvar/noncore annotations inside shminit-marked initializing functions;
// each region is bound to the global pointer variable that holds its base
// address. The InitCheck the paper inserts at run time (non-overlap of
// regions) is recorded as a required runtime check in the report.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/diagnostics.h"

namespace safeflow::analysis {

struct ShmRegion {
  int id = -1;
  /// Name of the global shm pointer variable (e.g. "feedback"), or the
  /// socket descriptor variable for message channels.
  std::string name;
  /// The global holding the region's base pointer (or the descriptor).
  const ir::GlobalVar* pointer_global = nullptr;
  /// Element type the pointer points at (null for message channels).
  const ir::Type* pointee_type = nullptr;
  /// Total bytes reachable through the pointer (shmvar's size argument).
  std::int64_t size = 0;
  /// True when a noncore(ptr) annotation marks the region writable by
  /// non-core components.
  bool noncore = false;
  /// True for a message channel (paper §3.4.3): a pseudo-region standing
  /// for data received over a noncore(socket)-annotated descriptor.
  bool is_message_channel = false;
  support::SourceLocation location;

  /// Number of elements (size / sizeof(pointee)).
  [[nodiscard]] std::int64_t elementCount() const;
};

class ShmRegionTable {
 public:
  /// Scans shminit functions for shmvar/noncore intrinsics. Reports
  /// diagnostics for malformed declarations (shmvar naming a non-global,
  /// noncore without a matching shmvar, duplicate shmvar).
  static ShmRegionTable build(const ir::Module& module,
                              support::DiagnosticEngine& diags);

  [[nodiscard]] const std::vector<ShmRegion>& regions() const {
    return regions_;
  }
  [[nodiscard]] const ShmRegion* byId(int id) const;
  [[nodiscard]] const ShmRegion* byGlobal(const ir::GlobalVar* g) const;
  [[nodiscard]] const ShmRegion* byName(std::string_view name) const;
  [[nodiscard]] bool empty() const { return regions_.empty(); }
  [[nodiscard]] std::size_t noncoreCount() const;

  /// Functions carrying the shminit annotation.
  [[nodiscard]] const std::vector<const ir::Function*>& initFunctions()
      const {
    return init_functions_;
  }
  [[nodiscard]] bool isInitFunction(const ir::Function* fn) const;

  /// Message-channel pseudo-region for a noncore(socket) descriptor
  /// global, or nullptr.
  [[nodiscard]] const ShmRegion* channelByGlobal(
      const ir::GlobalVar* g) const;
  [[nodiscard]] std::size_t channelCount() const;

  /// True when every region's base offset within its segment was derived
  /// statically and the extents were proven non-overlapping — the paper's
  /// run-time InitCheck discharged at analysis time. Overlaps found
  /// statically are reported as "annotation.initcheck" errors.
  [[nodiscard]] bool initCheckVerifiedStatically() const {
    return init_check_static_;
  }

 private:
  /// Abstract interpretation of the init functions: derives each region's
  /// constant byte offset within its segment where possible and checks
  /// extents for overlap.
  void verifyInitCheck(const ir::Module& module,
                       support::DiagnosticEngine& diags);

  std::vector<ShmRegion> regions_;
  std::map<const ir::GlobalVar*, int> by_global_;
  std::vector<const ir::Function*> init_functions_;
  bool init_check_static_ = false;
};

}  // namespace safeflow::analysis
