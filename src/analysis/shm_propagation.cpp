#include "analysis/shm_propagation.h"

#include <algorithm>
#include <deque>

#include "support/metrics.h"

namespace safeflow::analysis {

namespace {
constexpr unsigned kWidenThreshold = 4;
}

bool ShmPtrInfo::merge(const ShmPtrInfo& other) {
  if (other.regions.empty()) return false;
  // Adopting facts into a previously-empty info copies the interval
  // verbatim; hulling with the default [0,0] would fabricate offset 0.
  if (regions.empty()) {
    const bool changed = *this != other;
    *this = other;
    return changed;
  }
  bool changed = false;
  for (int r : other.regions) {
    if (regions.insert(r).second) changed = true;
  }
  if (!other.offset_known && offset_known) {
    offset_known = false;
    changed = true;
  }
  if (offset_known && other.offset_known) {
    if (other.lo < lo) {
      lo = other.lo;
      changed = true;
    }
    if (other.hi > hi) {
      hi = other.hi;
      changed = true;
    }
  }
  return changed;
}

ShmPointerAnalysis::ShmPointerAnalysis(const ir::Module& module,
                                       const ShmRegionTable& regions,
                                       const ir::CallGraph& callgraph,
                                       support::AnalysisBudget* budget)
    : module_(module),
      regions_(regions),
      callgraph_(callgraph),
      budget_(budget) {}

ShmPtrInfo ShmPointerAnalysis::get(const ir::Value* v) const {
  auto it = facts_.find(v);
  return it == facts_.end() ? ShmPtrInfo{} : it->second;
}

void ShmPointerAnalysis::widen(ShmPtrInfo& info) const {
  info.offset_known = false;
  info.lo = 0;
  std::int64_t max_size = 0;
  for (int r : info.regions) {
    if (const ShmRegion* region = regions_.byId(r)) {
      max_size = std::max(max_size, region->size);
    }
  }
  info.hi = max_size;
}

bool ShmPointerAnalysis::update(const ir::Value* v,
                                const ShmPtrInfo& incoming) {
  if (incoming.empty()) return false;
  ShmPtrInfo& slot = facts_[v];
  ShmPtrInfo merged = slot;
  if (!merged.merge(incoming)) return false;
  unsigned& count = update_counts_[v];
  if (++count >= kWidenThreshold && merged.offset_known) widen(merged);
  slot = merged;
  return true;
}

void ShmPointerAnalysis::run() {
  const support::ScopedTimer timer("phase.shm_propagation");
  if (regions_.empty()) return;
  support::budgetBeginPhase(budget_, "shm_propagation");
  support::MetricsRegistry::Counter* pushes =
      support::counterHandle("shm_propagation.worklist_pushes");

  std::deque<const ir::Function*> worklist;
  std::set<const ir::Function*> queued;
  // Seed bottom-up: callee-first order converges fastest.
  for (const auto& scc : callgraph_.sccsBottomUp()) {
    for (const ir::Function* fn : scc) {
      if (fn->isDefined() && !regions_.isInitFunction(fn)) {
        worklist.push_back(fn);
        queued.insert(fn);
        if (pushes != nullptr) pushes->add();
      }
    }
  }

  while (!worklist.empty()) {
    if (!support::budgetStep(budget_)) break;
    const ir::Function* fn = worklist.front();
    worklist.pop_front();
    queued.erase(fn);
    ++iterations_;
    bool ret_changed;
    {
      support::ScopedSpan span("shm_propagation.function");
      span.arg("fn", fn->name());
      ret_changed = analyzeFunction(*fn);
    }
    if (ret_changed) {
      for (const ir::Function* caller : callgraph_.callers(fn)) {
        if (caller->isDefined() && !regions_.isInitFunction(caller) &&
            queued.insert(caller).second) {
          worklist.push_back(caller);
          if (pushes != nullptr) pushes->add();
        }
      }
    }
    // Argument updates performed inside analyzeFunction enqueue callees.
    for (const ir::Function* callee : callgraph_.callees(fn)) {
      if (!callee->isDefined() || regions_.isInitFunction(callee)) continue;
      // Re-run callees whose argument facts may have grown; analyzeFunction
      // is idempotent, so over-enqueueing is safe. Only enqueue if any arg
      // has facts (cheap filter).
      bool has_arg_fact = false;
      for (const auto& arg : callee->args()) {
        if (facts_.contains(arg.get())) {
          has_arg_fact = true;
          break;
        }
      }
      if (has_arg_fact && queued.insert(callee).second) {
        worklist.push_back(callee);
        if (pushes != nullptr) pushes->add();
      }
    }
  }
  if (budget_ != nullptr && budget_->exhausted()) {
    // The fixpoint was cut short, so remaining facts may under-approximate
    // offsets. Widen every fact to "anywhere within its regions": coverage
    // checks then flag (rather than certify) every access the partial
    // analysis could not pin down.
    for (auto& [value, info] : facts_) widen(info);
    for (auto& [fn, info] : returns_) widen(info);
  }
  SAFEFLOW_COUNT_N("shm_propagation.iterations", iterations_);
  SAFEFLOW_COUNT_N("shm_propagation.values_tracked", facts_.size());
}

bool ShmPointerAnalysis::analyzeFunction(const ir::Function& fn) {
  bool any_change = true;
  bool ret_changed = false;
  // Iterate the straight-line transfer functions to a local fixpoint;
  // block order does not matter because facts only grow.
  while (any_change) {
    any_change = false;
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (!support::budgetStep(budget_)) return ret_changed;
        switch (inst->opcode()) {
          case ir::Opcode::kLoad: {
            // Loading the region's global pointer variable yields a pointer
            // to offset 0 of the region.
            const ir::Value* ptr = inst->operand(0);
            if (ptr->kind() == ir::Value::Kind::kGlobalVar) {
              const auto* g = static_cast<const ir::GlobalVar*>(ptr);
              if (const ShmRegion* region = regions_.byGlobal(g)) {
                ShmPtrInfo info;
                info.regions.insert(region->id);
                info.lo = info.hi = 0;
                any_change |= update(inst.get(), info);
                break;
              }
            }
            // Loading through an alloca that holds a shm pointer (not
            // promoted because its address escapes) propagates its fact.
            const ShmPtrInfo src = get(ptr);
            if (!src.empty() && inst->type()->isPointer()) {
              // The loaded value's provenance is unknown within the
              // region(s) the holder could reference.
              ShmPtrInfo info = src;
              any_change |= update(inst.get(), info);
            }
            break;
          }
          case ir::Opcode::kStore: {
            // Storing a shm pointer into a local slot (pre-promotion
            // pattern or escaped local): the slot's loads see the fact.
            const ShmPtrInfo src = get(inst->operand(0));
            if (!src.empty()) {
              const ir::Value* dst = inst->operand(1);
              if (dst->isInstruction() &&
                  static_cast<const ir::Instruction*>(dst)->opcode() ==
                      ir::Opcode::kAlloca) {
                any_change |= update(dst, src);
              }
            }
            break;
          }
          case ir::Opcode::kCast: {
            const ShmPtrInfo src = get(inst->operand(0));
            if (!src.empty()) any_change |= update(inst.get(), src);
            break;
          }
          case ir::Opcode::kPhi: {
            ShmPtrInfo merged;
            for (std::size_t i = 0; i < inst->numOperands(); ++i) {
              merged.merge(get(inst->operand(i)));
            }
            if (!merged.empty()) any_change |= update(inst.get(), merged);
            break;
          }
          case ir::Opcode::kFieldAddr: {
            ShmPtrInfo src = get(inst->operand(0));
            if (src.empty()) break;
            // Shift by the field offset; requires the pointee struct type.
            const ir::Value* base = inst->operand(0);
            const ir::Type* bt = base->type();
            std::int64_t field_off = 0;
            if (bt->isPointer()) {
              const ir::Type* pointee =
                  static_cast<const cfront::PointerType*>(bt)->pointee();
              if (pointee->isStruct()) {
                const auto* st =
                    static_cast<const cfront::StructType*>(pointee);
                if (inst->field_index < st->fields().size()) {
                  field_off = static_cast<std::int64_t>(
                      st->fields()[inst->field_index].offset);
                }
              }
            }
            if (src.offset_known) {
              src.lo += field_off;
              src.hi += field_off;
            }
            any_change |= update(inst.get(), src);
            break;
          }
          case ir::Opcode::kIndexAddr: {
            ShmPtrInfo src = get(inst->operand(0));
            if (src.empty()) break;
            std::int64_t elem_size = 8;
            if (inst->type()->isPointer()) {
              elem_size = static_cast<std::int64_t>(
                  static_cast<const cfront::PointerType*>(inst->type())
                      ->pointee()
                      ->size());
              if (elem_size == 0) elem_size = 1;
            }
            const ir::Value* idx = inst->operand(1);
            if (idx->kind() == ir::Value::Kind::kConstantInt &&
                src.offset_known) {
              const std::int64_t c =
                  static_cast<const ir::ConstantInt*>(idx)->value();
              src.lo += c * elem_size;
              src.hi += c * elem_size;
            } else {
              widen(src);
            }
            any_change |= update(inst.get(), src);
            break;
          }
          case ir::Opcode::kCall: {
            // Propagate shm-pointer arguments into callee parameters
            // (top-down) and callee return facts into this call's result
            // (bottom-up).
            const std::size_t first_arg =
                inst->direct_callee == nullptr ? 1 : 0;
            for (const ir::Function* target :
                 callgraph_.targets(*inst)) {
              if (target->isIntrinsic()) continue;
              if (!target->isDefined() ||
                  regions_.isInitFunction(target)) {
                continue;
              }
              for (std::size_t i = first_arg; i < inst->numOperands();
                   ++i) {
                const std::size_t param = i - first_arg;
                if (param >= target->args().size()) break;
                const ShmPtrInfo arg = get(inst->operand(i));
                if (!arg.empty()) {
                  update(target->args()[param].get(), arg);
                }
              }
              auto rit = returns_.find(target);
              if (rit != returns_.end() && !rit->second.empty()) {
                any_change |= update(inst.get(), rit->second);
              }
            }
            break;
          }
          case ir::Opcode::kRet: {
            if (inst->numOperands() == 1) {
              const ShmPtrInfo v = get(inst->operand(0));
              if (!v.empty()) {
                ShmPtrInfo& ret = returns_[&fn];
                if (ret.merge(v)) {
                  ret_changed = true;
                  any_change = true;
                }
              }
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }
  return ret_changed;
}

const ShmPtrInfo* ShmPointerAnalysis::info(const ir::Value* v) const {
  auto it = facts_.find(v);
  return (it == facts_.end() || it->second.empty()) ? nullptr : &it->second;
}

std::vector<const ir::Value*> ShmPointerAnalysis::shmValuesIn(
    const ir::Function& fn) const {
  std::vector<const ir::Value*> out;
  for (const auto& arg : fn.args()) {
    if (info(arg.get()) != nullptr) out.push_back(arg.get());
  }
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (info(inst.get()) != nullptr) out.push_back(inst.get());
    }
  }
  return out;
}

}  // namespace safeflow::analysis
