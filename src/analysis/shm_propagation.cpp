#include "analysis/shm_propagation.h"

#include <algorithm>
#include <deque>
#include <tuple>

#include "support/metrics.h"

namespace safeflow::analysis {

namespace {
constexpr unsigned kWidenThreshold = 4;
}

bool ShmPtrInfo::merge(const ShmPtrInfo& other) {
  if (other.regions.empty()) return false;
  // Adopting facts into a previously-empty info copies the interval
  // verbatim; hulling with the default [0,0] would fabricate offset 0.
  if (regions.empty()) {
    const bool changed = *this != other;
    *this = other;
    return changed;
  }
  bool changed = false;
  for (int r : other.regions) {
    if (regions.insert(r).second) changed = true;
  }
  if (!other.offset_known && offset_known) {
    offset_known = false;
    changed = true;
  }
  if (offset_known && other.offset_known) {
    if (other.lo < lo) {
      lo = other.lo;
      changed = true;
    }
    if (other.hi > hi) {
      hi = other.hi;
      changed = true;
    }
  }
  return changed;
}

ShmPointerAnalysis::ShmPointerAnalysis(const ir::Module& module,
                                       const ShmRegionTable& regions,
                                       const ir::CallGraph& callgraph,
                                       support::AnalysisBudget* budget,
                                       PhaseMemoHooks memo)
    : module_(module),
      regions_(regions),
      callgraph_(callgraph),
      budget_(budget),
      memo_(memo) {}

ShmPtrInfo ShmPointerAnalysis::get(const ir::Value* v) const {
  auto it = facts_.find(v);
  return it == facts_.end() ? ShmPtrInfo{} : it->second;
}

void ShmPointerAnalysis::widen(ShmPtrInfo& info) const {
  info.offset_known = false;
  info.lo = 0;
  std::int64_t max_size = 0;
  for (int r : info.regions) {
    if (const ShmRegion* region = regions_.byId(r)) {
      max_size = std::max(max_size, region->size);
    }
  }
  info.hi = max_size;
}

bool ShmPointerAnalysis::update(const ir::Value* v,
                                const ShmPtrInfo& incoming) {
  if (incoming.empty()) return false;
  ShmPtrInfo& slot = facts_[v];
  ShmPtrInfo merged = slot;
  if (!merged.merge(incoming)) return false;
  unsigned& count = update_counts_[v];
  if (++count >= kWidenThreshold && merged.offset_known) widen(merged);
  slot = merged;
  return true;
}

void ShmPointerAnalysis::run() {
  const support::ScopedTimer timer("phase.shm_propagation");
  if (regions_.empty()) return;
  support::budgetBeginPhase(budget_, "shm_propagation");
  support::MetricsRegistry::Counter* pushes =
      support::counterHandle("shm_propagation.worklist_pushes");

  std::deque<const ir::Function*> worklist;
  std::set<const ir::Function*> queued;
  // Seed bottom-up: callee-first order converges fastest.
  for (const auto& scc : callgraph_.sccsBottomUp()) {
    for (const ir::Function* fn : scc) {
      if (fn->isDefined() && !regions_.isInitFunction(fn)) {
        worklist.push_back(fn);
        queued.insert(fn);
        if (pushes != nullptr) pushes->add();
      }
    }
  }

  while (!worklist.empty()) {
    if (!support::budgetStep(budget_)) break;
    const ir::Function* fn = worklist.front();
    worklist.pop_front();
    queued.erase(fn);
    ++iterations_;
    bool ret_changed;
    {
      support::ScopedSpan span("shm_propagation.function");
      span.arg("fn", fn->name());
      ret_changed = memo_.enabled() ? memoizedAnalyze(*fn)
                                    : analyzeFunction(*fn);
    }
    if (ret_changed) {
      for (const ir::Function* caller : callgraph_.callers(fn)) {
        if (caller->isDefined() && !regions_.isInitFunction(caller) &&
            queued.insert(caller).second) {
          worklist.push_back(caller);
          if (pushes != nullptr) pushes->add();
        }
      }
    }
    // Argument updates performed inside analyzeFunction enqueue callees.
    for (const ir::Function* callee : callgraph_.callees(fn)) {
      if (!callee->isDefined() || regions_.isInitFunction(callee)) continue;
      // Re-run callees whose argument facts may have grown; analyzeFunction
      // is idempotent, so over-enqueueing is safe. Only enqueue if any arg
      // has facts (cheap filter).
      bool has_arg_fact = false;
      for (const auto& arg : callee->args()) {
        if (facts_.contains(arg.get())) {
          has_arg_fact = true;
          break;
        }
      }
      if (has_arg_fact && queued.insert(callee).second) {
        worklist.push_back(callee);
        if (pushes != nullptr) pushes->add();
      }
    }
  }
  if (budget_ != nullptr && budget_->exhausted()) {
    // The fixpoint was cut short, so remaining facts may under-approximate
    // offsets. Widen every fact to "anywhere within its regions": coverage
    // checks then flag (rather than certify) every access the partial
    // analysis could not pin down.
    for (auto& [value, info] : facts_) widen(info);
    for (auto& [fn, info] : returns_) widen(info);
  }
  SAFEFLOW_COUNT_N("shm_propagation.iterations", iterations_);
  SAFEFLOW_COUNT_N("shm_propagation.values_tracked", facts_.size());
}

bool ShmPointerAnalysis::analyzeFunction(const ir::Function& fn) {
  bool any_change = true;
  bool ret_changed = false;
  // Iterate the straight-line transfer functions to a local fixpoint;
  // block order does not matter because facts only grow.
  while (any_change) {
    any_change = false;
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (!support::budgetStep(budget_)) return ret_changed;
        switch (inst->opcode()) {
          case ir::Opcode::kLoad: {
            // Loading the region's global pointer variable yields a pointer
            // to offset 0 of the region.
            const ir::Value* ptr = inst->operand(0);
            if (ptr->kind() == ir::Value::Kind::kGlobalVar) {
              const auto* g = static_cast<const ir::GlobalVar*>(ptr);
              if (const ShmRegion* region = regions_.byGlobal(g)) {
                ShmPtrInfo info;
                info.regions.insert(region->id);
                info.lo = info.hi = 0;
                any_change |= update(inst.get(), info);
                break;
              }
            }
            // Loading through an alloca that holds a shm pointer (not
            // promoted because its address escapes) propagates its fact.
            const ShmPtrInfo src = get(ptr);
            if (!src.empty() && inst->type()->isPointer()) {
              // The loaded value's provenance is unknown within the
              // region(s) the holder could reference.
              ShmPtrInfo info = src;
              any_change |= update(inst.get(), info);
            }
            break;
          }
          case ir::Opcode::kStore: {
            // Storing a shm pointer into a local slot (pre-promotion
            // pattern or escaped local): the slot's loads see the fact.
            const ShmPtrInfo src = get(inst->operand(0));
            if (!src.empty()) {
              const ir::Value* dst = inst->operand(1);
              if (dst->isInstruction() &&
                  static_cast<const ir::Instruction*>(dst)->opcode() ==
                      ir::Opcode::kAlloca) {
                any_change |= update(dst, src);
              }
            }
            break;
          }
          case ir::Opcode::kCast: {
            const ShmPtrInfo src = get(inst->operand(0));
            if (!src.empty()) any_change |= update(inst.get(), src);
            break;
          }
          case ir::Opcode::kPhi: {
            ShmPtrInfo merged;
            for (std::size_t i = 0; i < inst->numOperands(); ++i) {
              merged.merge(get(inst->operand(i)));
            }
            if (!merged.empty()) any_change |= update(inst.get(), merged);
            break;
          }
          case ir::Opcode::kFieldAddr: {
            ShmPtrInfo src = get(inst->operand(0));
            if (src.empty()) break;
            // Shift by the field offset; requires the pointee struct type.
            const ir::Value* base = inst->operand(0);
            const ir::Type* bt = base->type();
            std::int64_t field_off = 0;
            if (bt->isPointer()) {
              const ir::Type* pointee =
                  static_cast<const cfront::PointerType*>(bt)->pointee();
              if (pointee->isStruct()) {
                const auto* st =
                    static_cast<const cfront::StructType*>(pointee);
                if (inst->field_index < st->fields().size()) {
                  field_off = static_cast<std::int64_t>(
                      st->fields()[inst->field_index].offset);
                }
              }
            }
            if (src.offset_known) {
              src.lo += field_off;
              src.hi += field_off;
            }
            any_change |= update(inst.get(), src);
            break;
          }
          case ir::Opcode::kIndexAddr: {
            ShmPtrInfo src = get(inst->operand(0));
            if (src.empty()) break;
            std::int64_t elem_size = 8;
            if (inst->type()->isPointer()) {
              elem_size = static_cast<std::int64_t>(
                  static_cast<const cfront::PointerType*>(inst->type())
                      ->pointee()
                      ->size());
              if (elem_size == 0) elem_size = 1;
            }
            const ir::Value* idx = inst->operand(1);
            if (idx->kind() == ir::Value::Kind::kConstantInt &&
                src.offset_known) {
              const std::int64_t c =
                  static_cast<const ir::ConstantInt*>(idx)->value();
              src.lo += c * elem_size;
              src.hi += c * elem_size;
            } else {
              widen(src);
            }
            any_change |= update(inst.get(), src);
            break;
          }
          case ir::Opcode::kCall: {
            // Propagate shm-pointer arguments into callee parameters
            // (top-down) and callee return facts into this call's result
            // (bottom-up).
            const std::size_t first_arg =
                inst->direct_callee == nullptr ? 1 : 0;
            for (const ir::Function* target :
                 callgraph_.targets(*inst)) {
              if (target->isIntrinsic()) continue;
              if (!target->isDefined() ||
                  regions_.isInitFunction(target)) {
                continue;
              }
              for (std::size_t i = first_arg; i < inst->numOperands();
                   ++i) {
                const std::size_t param = i - first_arg;
                if (param >= target->args().size()) break;
                const ShmPtrInfo arg = get(inst->operand(i));
                if (!arg.empty()) {
                  update(target->args()[param].get(), arg);
                }
              }
              auto rit = returns_.find(target);
              if (rit != returns_.end() && !rit->second.empty()) {
                any_change |= update(inst.get(), rit->second);
              }
            }
            break;
          }
          case ir::Opcode::kRet: {
            if (inst->numOperands() == 1) {
              const ShmPtrInfo v = get(inst->operand(0));
              if (!v.empty()) {
                ShmPtrInfo& ret = returns_[&fn];
                if (ret.merge(v)) {
                  ret_changed = true;
                  any_change = true;
                }
              }
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }
  return ret_changed;
}

namespace {

void hashShmInfo(support::Fnv1a& h, const ShmPtrInfo& info) {
  hashUint(h, info.regions.size());
  for (int r : info.regions) hashInt(h, r);
  hashInt(h, info.lo);
  hashInt(h, info.hi);
  hashUint(h, info.offset_known ? 1 : 0);
}

void writeShmInfo(BlobWriter& w, const ShmPtrInfo& info) {
  w.u64(info.regions.size());
  for (int r : info.regions) w.i64(r);
  w.i64(info.lo);
  w.i64(info.hi);
  w.u64(info.offset_known ? 1 : 0);
}

bool readShmInfo(BlobReader& r, ShmPtrInfo* info) {
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    info->regions.insert(static_cast<int>(r.i64()));
  }
  info->lo = r.i64();
  info->hi = r.i64();
  info->offset_known = r.u64() != 0;
  return r.ok();
}

std::string shmInfoStr(const ShmPtrInfo& info) {
  std::string s;
  for (int r : info.regions) s += std::to_string(r) + ",";
  s += "|" + std::to_string(info.lo) + "|" + std::to_string(info.hi) + "|" +
       (info.offset_known ? "1" : "0");
  return s;
}

/// True for call targets this phase actually propagates through.
bool shmRelevantTarget(const ir::Function* target,
                       const ShmRegionTable& regions) {
  return target->isDefined() && !target->isIntrinsic() &&
         !regions.isInitFunction(target);
}

}  // namespace

// The local solve is a deterministic transformer over: its own facts and
// update counts, its return info, its callees' formal facts/counts (it
// writes them) and return infos (it reads them). Digesting exactly that
// set makes a digest hit mean "the live solve would compute exactly the
// recorded post-state", so replaying it is exact memoization — not an
// approximation to be verified separately.
void ShmPointerAnalysis::digestInput(const ir::Function& fn,
                                     support::Fnv1a& h) const {
  const ValueIndex& vi = memo_.index->of(fn);
  hashToken(h, "shm-in");
  hashToken(h, fn.name());
  const auto& values = vi.values();
  for (std::size_t id = 0; id < values.size(); ++id) {
    const auto it = facts_.find(values[id]);
    if (it == facts_.end()) continue;
    hashUint(h, id);
    hashShmInfo(h, it->second);
    const auto cit = update_counts_.find(values[id]);
    hashUint(h, cit == update_counts_.end() ? 0 : cit->second);
  }
  hashToken(h, "ret");
  const auto rit = returns_.find(&fn);
  hashUint(h, rit == returns_.end() ? 0 : 1);
  if (rit != returns_.end()) hashShmInfo(h, rit->second);
  hashToken(h, "calls");
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != ir::Opcode::kCall) continue;
      for (const ir::Function* target : callgraph_.targets(*inst)) {
        if (!shmRelevantTarget(target, regions_)) continue;
        hashToken(h, target->name());
        for (std::size_t p = 0; p < target->args().size(); ++p) {
          const ir::Value* formal = target->args()[p].get();
          const auto fit = facts_.find(formal);
          if (fit == facts_.end()) continue;
          hashUint(h, p);
          hashShmInfo(h, fit->second);
          const auto cit = update_counts_.find(formal);
          hashUint(h, cit == update_counts_.end() ? 0 : cit->second);
        }
        const auto trit = returns_.find(target);
        hashUint(h, trit == returns_.end() ? 0 : 1);
        if (trit != returns_.end()) hashShmInfo(h, trit->second);
      }
    }
  }
}

std::string ShmPointerAnalysis::captureRecord(const ir::Function& fn,
                                              bool identity,
                                              bool ret_changed) const {
  const ValueIndex& vi = memo_.index->of(fn);
  BlobWriter w;
  // Identity records (post-digest == pre-digest, i.e. the solve changed
  // nothing in the digested read/write set) let a hit skip the state
  // parse entirely; the driver signal is still stored separately because
  // it is what the replay must return. Note ret_changed alone is NOT an
  // identity test: a solve can grow facts without changing return info.
  w.u64(identity ? 1 : 0);
  w.u64(ret_changed ? 1 : 0);

  const auto& values = vi.values();
  std::vector<std::size_t> own;
  for (std::size_t id = 0; id < values.size(); ++id) {
    if (facts_.count(values[id]) != 0) own.push_back(id);
  }
  w.u64(own.size());
  for (const std::size_t id : own) {
    w.u64(id);
    writeShmInfo(w, facts_.at(values[id]));
    const auto cit = update_counts_.find(values[id]);
    w.u64(cit == update_counts_.end() ? 0 : cit->second);
  }

  const auto rit = returns_.find(&fn);
  w.u64(rit == returns_.end() ? 0 : 1);
  if (rit != returns_.end()) writeShmInfo(w, rit->second);

  // Callee formals this function's call sites may have written.
  std::set<std::pair<std::string, std::size_t>> seen;
  std::vector<std::tuple<std::string, std::size_t, const ir::Value*>> slots;
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != ir::Opcode::kCall) continue;
      for (const ir::Function* target : callgraph_.targets(*inst)) {
        if (!shmRelevantTarget(target, regions_)) continue;
        for (std::size_t p = 0; p < target->args().size(); ++p) {
          const ir::Value* formal = target->args()[p].get();
          if (facts_.count(formal) == 0) continue;
          if (!seen.insert({target->name(), p}).second) continue;
          slots.emplace_back(target->name(), p, formal);
        }
      }
    }
  }
  w.u64(slots.size());
  for (const auto& [name, p, formal] : slots) {
    w.str(name);
    w.u64(p);
    writeShmInfo(w, facts_.at(formal));
    const auto cit = update_counts_.find(formal);
    w.u64(cit == update_counts_.end() ? 0 : cit->second);
  }
  return w.take();
}

bool ShmPointerAnalysis::applyRecord(const ir::Function& fn,
                                     const std::string& blob,
                                     bool* ret_changed) {
  const ValueIndex& vi = memo_.index->of(fn);
  const auto& values = vi.values();
  BlobReader r(blob);

  // Parse everything into staging first: a malformed blob must not leave
  // partially-applied state behind (the caller falls back to a live run).
  r.u64();  // identity flag, already consumed by the caller's peek
  const bool rc = r.u64() != 0;
  std::vector<std::pair<const ir::Value*, std::pair<ShmPtrInfo, unsigned>>>
      staged;
  const std::uint64_t own = r.u64();
  for (std::uint64_t i = 0; i < own && r.ok(); ++i) {
    const std::uint64_t id = r.u64();
    ShmPtrInfo info;
    if (!readShmInfo(r, &info)) return false;
    const unsigned count = static_cast<unsigned>(r.u64());
    if (id >= values.size()) return false;
    staged.push_back({values[id], {info, count}});
  }
  bool have_ret = false;
  ShmPtrInfo ret_info;
  if (r.u64() != 0) {
    have_ret = true;
    if (!readShmInfo(r, &ret_info)) return false;
  }
  const std::uint64_t nslots = r.u64();
  for (std::uint64_t i = 0; i < nslots && r.ok(); ++i) {
    const std::string name = r.str();
    const std::uint64_t p = r.u64();
    ShmPtrInfo info;
    if (!readShmInfo(r, &info)) return false;
    const unsigned count = static_cast<unsigned>(r.u64());
    const ir::Function* target = memo_.index->function(name);
    if (target == nullptr || p >= target->args().size()) return false;
    staged.push_back({target->args()[p].get(), {info, count}});
  }
  if (!r.ok() || !r.atEnd()) return false;

  for (const auto& [v, rec] : staged) {
    facts_[v] = rec.first;
    update_counts_[v] = rec.second;
  }
  if (have_ret) returns_[&fn] = ret_info;
  *ret_changed = rc;
  return true;
}

bool ShmPointerAnalysis::memoizedAnalyze(const ir::Function& fn) {
  support::Fnv1a h;
  digestInput(fn, h);
  const std::uint64_t digest = h.digest();
  if (const std::string* blob = memo_.bank->find(fn, digest)) {
    // Identity records changed nothing, so only the recorded driver
    // signal is needed — skip the state parse. This makes the converged
    // tail of a warm fixpoint (every visit after the first) nearly free.
    BlobReader peek(*blob);
    const bool identity = peek.u64() != 0;
    const bool rc = peek.u64() != 0;
    if (peek.ok() && identity) return rc;
    bool ret_changed = false;
    if (applyRecord(fn, *blob, &ret_changed)) return ret_changed;
  }
  const bool ret_changed = analyzeFunction(fn);
  // Re-digesting after the solve detects identity transforms exactly:
  // the digest covers the full read set and the pre-state of the write
  // set, so an unchanged digest means an unchanged write set.
  support::Fnv1a post;
  digestInput(fn, post);
  const bool identity = post.digest() == digest;
  memo_.bank->record(fn, digest, captureRecord(fn, identity, ret_changed));
  return ret_changed;
}

std::uint64_t ShmPointerAnalysis::digestState(
    const ModuleIndex& index) const {
  std::map<std::string, std::string> items;
  for (const auto& [v, info] : facts_) {
    const auto [owner, id] = index.locate(v);
    const std::string name =
        (owner != nullptr ? owner->name() : std::string("?")) + "#" +
        std::to_string(id);
    items["v:" + name] = shmInfoStr(info);
  }
  for (const auto& [fn, info] : returns_) {
    items["r:" + fn->name()] = shmInfoStr(info);
  }
  support::Fnv1a h;
  for (const auto& [k, v] : items) {
    hashToken(h, k);
    hashToken(h, v);
  }
  return h.digest();
}

const ShmPtrInfo* ShmPointerAnalysis::info(const ir::Value* v) const {
  auto it = facts_.find(v);
  return (it == facts_.end() || it->second.empty()) ? nullptr : &it->second;
}

std::vector<const ir::Value*> ShmPointerAnalysis::shmValuesIn(
    const ir::Function& fn) const {
  std::vector<const ir::Value*> out;
  for (const auto& arg : fn.args()) {
    if (info(arg.get()) != nullptr) out.push_back(arg.get());
  }
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (info(inst.get()) != nullptr) out.push_back(inst.get());
    }
  }
  return out;
}

}  // namespace safeflow::analysis
