// Omega-lite: feasibility of small systems of integer linear constraints,
// used by the A1/A2 array-restriction checks (paper §3.2). The paper hands
// its constraints to the Omega solver; bounds checks only need
// (in)feasibility of conjunctions of affine inequalities, which
// Fourier–Motzkin elimination with integer tightening decides for the
// loop-bound systems we generate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/limits.h"

namespace safeflow::analysis {

/// sum(coeff[i] * var[i]) + constant >= 0
struct LinearConstraint {
  std::map<int, std::int64_t> coeffs;  // variable id -> coefficient
  std::int64_t constant = 0;

  [[nodiscard]] std::string str() const;
};

class LinearSystem {
 public:
  /// Introduces a fresh variable and returns its id.
  int addVariable(std::string name = {});
  [[nodiscard]] int variableCount() const { return num_vars_; }

  void add(LinearConstraint c);
  /// Convenience: lo <= var  (var - lo >= 0).
  void addLowerBound(int var, std::int64_t lo);
  /// Convenience: var <= hi  (hi - var >= 0).
  void addUpperBound(int var, std::int64_t hi);
  /// Convenience: a == b + c  (two inequalities).
  void addEquality(LinearConstraint c);

  [[nodiscard]] const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }

  /// True when an integer assignment satisfying all constraints exists.
  /// Uses Fourier–Motzkin elimination with integer (floor/ceil)
  /// tightening; exact for the two-variables-per-inequality systems the
  /// restriction checker generates, conservative (may report feasible) in
  /// the general case — conservative here means a bounds *violation* may
  /// be reported that cannot actually occur, never the reverse. Each
  /// derived constraint accounts one budget step; if the budget trips
  /// mid-elimination the answer is "feasible" (the constraint system is
  /// unprovable, so the checker reports the violation), which errs the
  /// same safe direction.
  [[nodiscard]] bool isFeasible(
      support::AnalysisBudget* budget = nullptr) const;

  [[nodiscard]] std::string str() const;

 private:
  int num_vars_ = 0;
  std::vector<std::string> names_;
  std::vector<LinearConstraint> constraints_;
};

}  // namespace safeflow::analysis
