// Phase 1 (paper §3.3): interprocedural identification of pointers to
// shared memory. Every SSA value that may point into a declared shm region
// is labelled with the set of regions and a conservative interval of byte
// offsets its target may start at. Propagation runs bottom-up and top-down
// over the call-graph SCCs (implemented as a function-level worklist that
// reaches the same fixpoint); shminit function bodies are exempt (their
// raw shmat-derived pointers are described by annotations instead).
#pragma once

#include <map>
#include <optional>
#include <set>

#include "analysis/shm_regions.h"
#include "analysis/summaries.h"
#include "ir/callgraph.h"
#include "ir/ir.h"
#include "support/limits.h"

namespace safeflow::analysis {

/// Offset interval [lo, hi] (inclusive) of the pointed-to location's start
/// within the region; `exact` when derived purely from constants.
struct ShmPtrInfo {
  std::set<int> regions;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool offset_known = true;  // false -> anywhere within the region

  [[nodiscard]] bool empty() const { return regions.empty(); }
  /// Hull-merge; returns true when this changed.
  bool merge(const ShmPtrInfo& other);
  bool operator==(const ShmPtrInfo&) const = default;
};

class ShmPointerAnalysis {
 public:
  ShmPointerAnalysis(const ir::Module& module, const ShmRegionTable& regions,
                     const ir::CallGraph& callgraph,
                     support::AnalysisBudget* budget = nullptr,
                     PhaseMemoHooks memo = {});

  /// Runs to a fixpoint, or until the budget trips. On exhaustion every
  /// recorded fact is widened to "anywhere within its regions" so
  /// downstream coverage checks degrade toward reporting, not certifying.
  void run();

  /// Shm info for a value, or nullptr when the value cannot point into
  /// shared memory.
  [[nodiscard]] const ShmPtrInfo* info(const ir::Value* v) const;

  /// All values in `fn` that may point into shared memory.
  [[nodiscard]] std::vector<const ir::Value*> shmValuesIn(
      const ir::Function& fn) const;

  /// Number of fixpoint iterations taken (for the ablation bench).
  [[nodiscard]] std::size_t iterations() const { return iterations_; }

  /// Order-independent digest of the final analysis state (facts and
  /// return infos under cross-run stable names); --verify-summaries
  /// compares a memoized run's digest against a cold re-solve.
  [[nodiscard]] std::uint64_t digestState(const ModuleIndex& index) const;

 private:
  /// Recomputes the intraprocedural fixpoint; returns true when the
  /// function's outputs (return info) changed.
  bool analyzeFunction(const ir::Function& fn);
  /// Memoizing wrapper around analyzeFunction: digests the transformer's
  /// input (own facts, return info, callee formals and returns), replays
  /// a recorded post-state on a digest hit, records one on a miss.
  bool memoizedAnalyze(const ir::Function& fn);
  void digestInput(const ir::Function& fn, support::Fnv1a& h) const;
  [[nodiscard]] std::string captureRecord(const ir::Function& fn,
                                          bool identity,
                                          bool ret_changed) const;
  bool applyRecord(const ir::Function& fn, const std::string& blob,
                   bool* ret_changed);
  bool update(const ir::Value* v, const ShmPtrInfo& incoming);
  [[nodiscard]] ShmPtrInfo get(const ir::Value* v) const;
  void widen(ShmPtrInfo& info) const;

  const ir::Module& module_;
  const ShmRegionTable& regions_;
  const ir::CallGraph& callgraph_;
  support::AnalysisBudget* budget_ = nullptr;
  PhaseMemoHooks memo_;

  std::map<const ir::Value*, ShmPtrInfo> facts_;
  std::map<const ir::Value*, unsigned> update_counts_;
  std::map<const ir::Function*, ShmPtrInfo> returns_;
  std::size_t iterations_ = 0;
};

}  // namespace safeflow::analysis
