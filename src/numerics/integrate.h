// Fixed-step Runge–Kutta 4 integration for plant simulation.
#pragma once

#include <functional>
#include <vector>

namespace safeflow::numerics {

using StateVector = std::vector<double>;
/// dx/dt = f(x, u) for a scalar input u.
using Dynamics =
    std::function<StateVector(const StateVector& x, double u)>;

/// One RK4 step of length dt.
[[nodiscard]] StateVector rk4Step(const Dynamics& f, const StateVector& x,
                                  double u, double dt);

/// n sub-steps of dt/n each (improves accuracy for stiff-ish plants).
[[nodiscard]] StateVector rk4StepSub(const Dynamics& f, const StateVector& x,
                                     double u, double dt, unsigned substeps);

}  // namespace safeflow::numerics
