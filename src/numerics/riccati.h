// Discrete-time LQR synthesis (iterated Riccati difference equation) and
// the discrete Lyapunov equation — the mathematics behind the Simplex
// architecture's safety controller and its stability-envelope monitor
// (paper §1: "the Lyapunov stability envelope proposed by the Simplex
// architecture [22] as a run-time monitor").
#pragma once

#include <optional>

#include "numerics/matrix.h"

namespace safeflow::numerics {

struct LqrResult {
  Matrix gain;          // K: u = -K x
  Matrix cost_to_go;    // P from the Riccati fixed point
  std::size_t iterations = 0;
  bool converged = false;
};

/// Solves the infinite-horizon discrete LQR problem for x' = A x + B u
/// with stage cost x'Qx + u'Ru by iterating the Riccati difference
/// equation to a fixed point.
[[nodiscard]] LqrResult solveDiscreteLqr(const Matrix& A, const Matrix& B,
                                         const Matrix& Q, const Matrix& R,
                                         std::size_t max_iterations = 10000,
                                         double tolerance = 1e-10);

/// Solves the discrete Lyapunov equation  P = A' P A + Q  by the
/// converging series sum A'^k Q A^k (requires A Schur-stable). Returns
/// nullopt when the series fails to converge.
[[nodiscard]] std::optional<Matrix> solveDiscreteLyapunov(
    const Matrix& A, const Matrix& Q, std::size_t max_iterations = 20000,
    double tolerance = 1e-12);

/// Euler discretization of continuous dynamics xdot = A x + B u:
/// Ad = I + A dt, Bd = B dt.
struct Discretized {
  Matrix A;
  Matrix B;
};
[[nodiscard]] Discretized discretize(const Matrix& A, const Matrix& B,
                                     double dt);

}  // namespace safeflow::numerics
