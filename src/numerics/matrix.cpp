#include "numerics/matrix.h"

#include <cmath>
#include <sstream>

namespace safeflow::numerics {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("ragged matrix initializer");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::columnVector(std::initializer_list<double> values) {
  Matrix m(values.size(), 1);
  std::size_t i = 0;
  for (double v : values) m(i++, 0) = v;
  return m;
}

Matrix Matrix::columnVector(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("matrix index");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("matrix index");
  return data_[r * cols_ + c];
}

Matrix Matrix::operator+(const Matrix& o) const {
  if (!sameShape(o)) throw std::invalid_argument("shape mismatch in +");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + o.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& o) const {
  if (!sameShape(o)) throw std::invalid_argument("shape mismatch in -");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - o.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("shape mismatch in *");
  Matrix out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) {
        out.data_[i * o.cols_ + j] += a * o.data_[k * o.cols_ + j];
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (!sameShape(o)) throw std::invalid_argument("shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix operator*(double s, const Matrix& m) { return m * s; }

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

Matrix Matrix::inverse() const {
  if (!isSquare()) throw std::invalid_argument("inverse of non-square");
  const std::size_t n = rows_;
  Matrix aug(n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug(i, j) = (*this)(i, j);
    aug(i, n + i) = 1.0;
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(aug(r, col)) > std::abs(aug(pivot, col))) pivot = r;
    }
    if (std::abs(aug(pivot, col)) < 1e-12) {
      throw std::runtime_error("singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < 2 * n; ++j) {
        std::swap(aug(col, j), aug(pivot, j));
      }
    }
    const double d = aug(col, col);
    for (std::size_t j = 0; j < 2 * n; ++j) aug(col, j) /= d;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = aug(r, col);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < 2 * n; ++j) {
        aug(r, j) -= f * aug(col, j);
      }
    }
  }
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) out(i, j) = aug(i, n + j);
  }
  return out;
}

Matrix Matrix::solve(const Matrix& b) const { return inverse() * b; }

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::maxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::quadraticForm(const Matrix& x, const Matrix& y) const {
  const Matrix r = x.transpose() * (*this) * y;
  return r(0, 0);
}

bool Matrix::approxEquals(const Matrix& o, double tol) const {
  if (!sameShape(o)) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - o.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::str() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < rows_; ++i) {
    out << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < cols_; ++j) {
      out << (j == 0 ? "" : ", ") << (*this)(i, j);
    }
    out << (i + 1 == rows_ ? "]" : ";\n");
  }
  return out.str();
}

}  // namespace safeflow::numerics
