#include "numerics/riccati.h"

namespace safeflow::numerics {

LqrResult solveDiscreteLqr(const Matrix& A, const Matrix& B, const Matrix& Q,
                           const Matrix& R, std::size_t max_iterations,
                           double tolerance) {
  LqrResult out;
  Matrix P = Q;
  const Matrix At = A.transpose();
  const Matrix Bt = B.transpose();
  for (std::size_t i = 0; i < max_iterations; ++i) {
    const Matrix BtP = Bt * P;
    const Matrix gain_denominator = R + BtP * B;
    const Matrix K = gain_denominator.inverse() * BtP * A;
    const Matrix next = At * P * A - At * P * B * K + Q;
    const double delta = (next - P).maxAbs();
    P = next;
    if (delta < tolerance) {
      out.converged = true;
      out.iterations = i + 1;
      break;
    }
    out.iterations = i + 1;
  }
  const Matrix BtP = B.transpose() * P;
  out.gain = (R + BtP * B).inverse() * BtP * A;
  out.cost_to_go = P;
  return out;
}

std::optional<Matrix> solveDiscreteLyapunov(const Matrix& A, const Matrix& Q,
                                            std::size_t max_iterations,
                                            double tolerance) {
  Matrix P = Q;
  Matrix term = Q;
  Matrix Ak = A;  // A^(k)
  for (std::size_t i = 0; i < max_iterations; ++i) {
    term = Ak.transpose() * Q * Ak;
    P += term;
    if (term.maxAbs() < tolerance) return P;
    Ak = Ak * A;
    if (Ak.maxAbs() > 1e12) return std::nullopt;  // diverging: A unstable
  }
  return std::nullopt;
}

Discretized discretize(const Matrix& A, const Matrix& B, double dt) {
  return Discretized{Matrix::identity(A.rows()) + A * dt, B * dt};
}

}  // namespace safeflow::numerics
