// Small dense-matrix library for the control-engineering substrate: the
// LQR/Riccati synthesis and Lyapunov-envelope monitors only need a few
// 4x4..6x6 operations, so this favours clarity over BLAS-grade speed.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace safeflow::numerics {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// Row-major brace construction: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }
  /// Column vector from values.
  static Matrix columnVector(std::initializer_list<double> values);
  static Matrix columnVector(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool isSquare() const { return rows_ == cols_; }
  [[nodiscard]] bool sameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(double s) const;
  Matrix& operator+=(const Matrix& o);

  [[nodiscard]] Matrix transpose() const;
  /// Gauss-Jordan inverse; throws std::runtime_error on singularity.
  [[nodiscard]] Matrix inverse() const;
  /// Solves A x = b for x (this is A).
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const;
  /// Max absolute element.
  [[nodiscard]] double maxAbs() const;
  /// x' * M * y for column vectors (quadratic form when x == y).
  [[nodiscard]] double quadraticForm(const Matrix& x, const Matrix& y) const;

  [[nodiscard]] bool approxEquals(const Matrix& o, double tol = 1e-9) const;
  [[nodiscard]] std::string str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator*(double s, const Matrix& m);

}  // namespace safeflow::numerics
