#include "numerics/integrate.h"

#include <cassert>

namespace safeflow::numerics {

namespace {
StateVector axpy(const StateVector& x, const StateVector& d, double s) {
  StateVector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + s * d[i];
  return out;
}
}  // namespace

StateVector rk4Step(const Dynamics& f, const StateVector& x, double u,
                    double dt) {
  const StateVector k1 = f(x, u);
  const StateVector k2 = f(axpy(x, k1, dt / 2.0), u);
  const StateVector k3 = f(axpy(x, k2, dt / 2.0), u);
  const StateVector k4 = f(axpy(x, k3, dt), u);
  StateVector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
  return out;
}

StateVector rk4StepSub(const Dynamics& f, const StateVector& x, double u,
                       double dt, unsigned substeps) {
  assert(substeps > 0);
  StateVector cur = x;
  const double h = dt / substeps;
  for (unsigned i = 0; i < substeps; ++i) cur = rk4Step(f, cur, u, h);
  return cur;
}

}  // namespace safeflow::numerics
