#include "simplex/monitor.h"

#include <cmath>

#include "numerics/riccati.h"

namespace safeflow::simplex {

using numerics::Matrix;

StabilityEnvelopeMonitor::StabilityEnvelopeMonitor(
    const Plant& plant, const LqrController& safety, double dt,
    double output_limit_volts)
    : output_limit_(output_limit_volts), dt_(dt) {
  const auto disc =
      numerics::discretize(plant.linearA(), plant.linearB(), dt);
  Ad_ = disc.A;
  Bd_ = disc.B;
  // Closed loop under the safety controller.
  const Matrix& K = safety.gain();
  Matrix Acl = Ad_ - Bd_ * K;
  const std::size_t n = plant.stateDim();
  const auto P = numerics::solveDiscreteLyapunov(Acl, Matrix::identity(n));
  if (!P.has_value()) {
    P_ = Matrix::identity(n);
    level_ = 0.0;
    valid_ = false;
    return;
  }
  P_ = *P;
  valid_ = true;

  // Calibrate the envelope level so the plant's hard limits are outside:
  // evaluate x'Px at states sitting on each limit and take the minimum.
  double level = 1e18;
  numerics::StateVector probe(n, 0.0);
  const auto probe_level = [&](std::size_t idx, double value) {
    numerics::StateVector x(n, 0.0);
    x[idx] = value;
    const Matrix xv = Matrix::columnVector(x);
    level = std::min(level, P_.quadraticForm(xv, xv));
  };
  if (n == 4) {
    const auto* ip = dynamic_cast<const InvertedPendulum*>(&plant);
    const double track = ip ? ip->params().track_limit : 0.4;
    const double angle = ip ? ip->params().angle_limit : 0.6;
    probe_level(0, track);
    probe_level(2, angle);
  } else {
    probe_level(0, 0.5);
    probe_level(1, 0.35);
    probe_level(2, 0.35);
  }
  level_ = level * 0.81;  // keep a 10% state margin inside the hard limits
}

double StabilityEnvelopeMonitor::evaluate(
    const numerics::StateVector& x) const {
  const Matrix xv = Matrix::columnVector(x);
  return P_.quadraticForm(xv, xv);
}

MonitorDecision StabilityEnvelopeMonitor::check(
    const numerics::StateVector& x, double u) const {
  MonitorDecision d;
  d.envelope_value_now = evaluate(x);

  if (!valid_) {
    d.reason = "monitor invalid: Lyapunov equation did not converge";
    return d;
  }
  if (!std::isfinite(u)) {
    d.reason = "non-finite control output";
    return d;
  }
  if (std::abs(u) > output_limit_) {
    d.reason = "control output exceeds actuator range";
    return d;
  }

  // One-step prediction under u using the linearized plant.
  const std::size_t n = x.size();
  numerics::StateVector next(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += Ad_(i, j) * x[j];
    acc += Bd_(i, 0) * u;
    next[i] = acc;
  }
  d.envelope_value_next = evaluate(next);

  if (d.envelope_value_next > level_) {
    d.reason = "would leave the stability envelope";
    return d;
  }
  d.accepted = true;
  d.reason = "recoverable";
  return d;
}

}  // namespace safeflow::simplex
