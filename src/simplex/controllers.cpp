#include "simplex/controllers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numerics/riccati.h"

namespace safeflow::simplex {

using numerics::Matrix;

namespace {

Matrix synthesizeGain(const Plant& plant, const LqrWeights& weights,
                      double dt, double rate_weight_scale = 1.0) {
  const std::size_t n = plant.stateDim();
  Matrix Q = Matrix::zeros(n, n);
  if (n == 4) {
    Q(0, 0) = weights.position;
    Q(1, 1) = weights.rates;
    Q(2, 2) = weights.angle;
    Q(3, 3) = weights.rates * rate_weight_scale;
  } else {
    // Double pendulum layout [x, th1, th2, xdot, th1dot, th2dot].
    Q(0, 0) = weights.position;
    Q(1, 1) = weights.angle;
    Q(2, 2) = weights.angle;
    for (std::size_t i = 3; i < n; ++i) Q(i, i) = weights.rates;
  }
  Matrix R{{weights.input}};
  const auto disc = numerics::discretize(plant.linearA(), plant.linearB(),
                                         dt);
  const auto lqr = numerics::solveDiscreteLqr(disc.A, disc.B, Q, R);
  return lqr.gain;
}

}  // namespace

LqrController::LqrController(const Plant& plant, LqrWeights weights,
                             double dt, double output_limit_volts,
                             std::string name)
    : gain_(synthesizeGain(plant, weights, dt)),
      output_limit_(output_limit_volts),
      name_(std::move(name)) {}

double LqrController::compute(const numerics::StateVector& x) {
  double u = 0.0;
  for (std::size_t i = 0; i < x.size() && i < gain_.cols(); ++i) {
    u -= gain_(0, i) * x[i];
  }
  return std::clamp(u, -output_limit_, output_limit_);
}

std::string_view faultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone: return "none";
    case FaultMode::kOverdrive: return "overdrive";
    case FaultMode::kRail: return "rail";
    case FaultMode::kNaN: return "nan";
    case FaultMode::kStuck: return "stuck";
    case FaultMode::kNoisy: return "noisy";
    case FaultMode::kDelayed: return "delayed";
  }
  return "?";
}

ExperimentalController::ExperimentalController(const Plant& plant, double dt,
                                               FaultMode fault,
                                               std::uint32_t seed)
    : gain_(synthesizeGain(plant,
                           LqrWeights{/*position=*/5.0, /*angle=*/60.0,
                                      /*rates=*/1.0, /*input=*/0.5},
                           dt)),
      fault_(fault),
      stale_state_(plant.stateDim(), 0.0),
      rng_(seed) {}

double ExperimentalController::compute(const numerics::StateVector& x) {
  ++calls_;
  const bool fault_active =
      fault_ != FaultMode::kNone && calls_ > fault_onset_;

  numerics::StateVector effective = x;
  if (fault_active && fault_ == FaultMode::kDelayed) {
    effective = stale_state_;
  }
  stale_state_ = x;

  double u = 0.0;
  for (std::size_t i = 0; i < effective.size() && i < gain_.cols(); ++i) {
    u -= gain_(0, i) * effective[i];
  }

  if (fault_active) {
    switch (fault_) {
      case FaultMode::kOverdrive:
        u = 12.0;  // well past the +/-5V actuator range
        break;
      case FaultMode::kRail:
        u = 5.0;  // maximum in-range command, constantly
        break;
      case FaultMode::kNaN:
        u = std::numeric_limits<double>::quiet_NaN();
        break;
      case FaultMode::kStuck:
        u = last_output_;
        break;
      case FaultMode::kNoisy: {
        std::normal_distribution<double> noise(0.0, 6.0);
        u += noise(rng_);
        break;
      }
      case FaultMode::kDelayed:
      case FaultMode::kNone:
        break;
    }
  }
  last_output_ = u;
  return u;
}

}  // namespace safeflow::simplex
