#include "simplex/runtime.h"

#include <cmath>
#include <random>
#include <sstream>

namespace safeflow::simplex {

std::string RuntimeStats::summary() const {
  std::ostringstream out;
  out << "steps=" << steps << " noncore_used=" << noncore_used
      << " rejected=" << noncore_rejected
      << " takeovers=" << safety_takeovers
      << " max|angle|=" << max_abs_angle << " max|x|=" << max_abs_position
      << (remained_safe ? " SAFE" : " UNSAFE")
      << (core_killed_itself ? " CORE-KILLED-ITSELF" : "");
  return out.str();
}

SimplexRuntime::SimplexRuntime(Plant& plant, RuntimeConfig config)
    : plant_(plant), config_(config) {}

RuntimeStats SimplexRuntime::run() {
  RuntimeStats stats;
  std::mt19937 rng(config_.seed);
  std::normal_distribution<double> noise(0.0, config_.sensor_noise);

  LqrController safety(plant_, LqrWeights{}, config_.dt, 5.0, "safety");
  ExperimentalController experimental(plant_, config_.dt,
                                      config_.controller_fault);
  experimental.setFaultOnset(config_.fault_onset_steps);
  StabilityEnvelopeMonitor monitor(plant_, safety, config_.dt);
  ShmFaultInjector injector(config_.shm_fault, config_.core_pid);

  shm_.writePid(Party::kCore, config_.supervisor_pid);

  const std::size_t total_steps =
      static_cast<std::size_t>(config_.duration / config_.dt);
  bool last_was_rejection = false;

  for (std::size_t step = 0; step < total_steps; ++step) {
    // --- Core: sample the sensor, publish feedback -----------------------
    numerics::StateVector sensed = plant_.state();
    for (double& v : sensed) v += noise(rng);

    FeedbackSlot fb;
    fb.position = sensed[0];
    if (sensed.size() == 4) {
      fb.angle = sensed[2];
      fb.rate = sensed[3];
    } else {
      fb.angle = sensed[1];
      fb.angle2 = sensed[2];
      fb.rate = sensed[3];
    }
    fb.seq = step;
    shm_.writeFeedback(Party::kCore, fb);

    // --- Non-core: read feedback, publish its control --------------------
    const FeedbackSlot nc_view = shm_.readFeedback();
    numerics::StateVector nc_state = sensed;
    nc_state[0] = nc_view.position;  // non-core sees shm, not the sensor
    ControlSlot ctl;
    ctl.control = experimental.compute(nc_state);
    ctl.seq = step;
    shm_.writeControl(Party::kNonCore, ctl);
    injector.afterNonCorePublish(shm_, step);

    // --- Core: decision module -------------------------------------------
    const double safe_u = safety.compute(sensed);
    const ControlSlot published = shm_.readControl();

    numerics::StateVector monitor_state = sensed;
    if (config_.vulnerable_decision) {
      // BUG variant: recoverability is evaluated against feedback re-read
      // from shared memory — riggable by the non-core component.
      const FeedbackSlot rigged = shm_.readFeedback();
      monitor_state[0] = rigged.position;
      if (monitor_state.size() == 4) {
        monitor_state[2] = rigged.angle;
        monitor_state[3] = rigged.rate;
      } else {
        monitor_state[1] = rigged.angle;
        monitor_state[2] = rigged.angle2;
        monitor_state[3] = rigged.rate;
      }
    }

    const MonitorDecision decision =
        monitor.check(monitor_state, published.control);
    double u = safe_u;
    if (decision.accepted) {
      u = published.control;
      ++stats.noncore_used;
      last_was_rejection = false;
    } else {
      ++stats.noncore_rejected;
      if (!last_was_rejection) ++stats.safety_takeovers;
      last_was_rejection = true;
    }

    // --- Core: mode-change signal (the kill defect) -----------------------
    if (config_.simulate_kill_signal && step > 0 && step % 100 == 0) {
      const std::int32_t pid = shm_.readControl().supervisor_pid;
      if (pid == config_.core_pid) {
        // kill(pid, SIGUSR1) would terminate the core itself.
        stats.core_killed_itself = true;
        stats.steps = step + 1;
        stats.remained_safe = plant_.isSafe();
        return stats;
      }
    }

    // --- Plant ------------------------------------------------------------
    plant_.step(u, config_.dt);
    stats.control_effort += std::abs(u) * config_.dt;
    ++stats.steps;

    const auto& x = plant_.state();
    const double angle =
        x.size() == 4 ? std::abs(x[2])
                      : std::max(std::abs(x[1]), std::abs(x[2]));
    stats.max_abs_angle = std::max(stats.max_abs_angle, angle);
    stats.max_abs_position = std::max(stats.max_abs_position,
                                      std::abs(x[0]));
    if (step % stats.trace_stride == 0) {
      stats.angle_trace.push_back(angle);
    }
    if (!plant_.isSafe()) {
      stats.remained_safe = false;
      return stats;
    }
  }
  stats.remained_safe = plant_.isSafe();
  return stats;
}

}  // namespace safeflow::simplex
