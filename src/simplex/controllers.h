// Controllers for the Simplex runtime: the well-tested safety (core)
// controller and the higher-performance experimental (non-core)
// controller, both LQR-synthesized but with different cost weights. The
// experimental controller can be configured with fault modes that model
// the misbehaviour classes the paper's evaluation discovered.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "numerics/matrix.h"
#include "simplex/plant.h"

namespace safeflow::simplex {

class Controller {
 public:
  virtual ~Controller() = default;
  /// Control output (volts) for the given plant state.
  virtual double compute(const numerics::StateVector& x) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

struct LqrWeights {
  double position = 1.0;
  double angle = 10.0;
  double rates = 0.1;
  double input = 1.0;
};

/// LQR state feedback u = -Kx synthesized from the plant's linearization.
class LqrController final : public Controller {
 public:
  LqrController(const Plant& plant, LqrWeights weights, double dt,
                double output_limit_volts = 5.0, std::string name = "lqr");

  double compute(const numerics::StateVector& x) override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] const numerics::Matrix& gain() const { return gain_; }
  [[nodiscard]] double outputLimit() const { return output_limit_; }

 private:
  numerics::Matrix gain_;
  double output_limit_;
  std::string name_;
};

/// Misbehaviour classes for the experimental controller — each maps to a
/// defect the paper's evaluation section discusses.
enum class FaultMode {
  kNone,         // correct high-performance controller
  kOverdrive,    // saturates past the actuator range (caught by the
                 // monitor's range check alone)
  kRail,         // pins the +5V rail: in range but destabilizing — only
                 // the stability envelope can reject it
  kNaN,          // emits non-finite output
  kStuck,        // repeats its last output forever
  kNoisy,        // adds heavy random noise
  kDelayed,      // outputs the command computed for a stale state
};

[[nodiscard]] std::string_view faultModeName(FaultMode mode);

/// The non-core, aggressive controller: tighter weights (better jitter,
/// per the paper's motivation) but configurable to misbehave.
class ExperimentalController final : public Controller {
 public:
  ExperimentalController(const Plant& plant, double dt,
                         FaultMode fault = FaultMode::kNone,
                         std::uint32_t seed = 1234);

  double compute(const numerics::StateVector& x) override;
  [[nodiscard]] std::string name() const override {
    return "experimental(" + std::string(faultModeName(fault_)) + ")";
  }
  void setFault(FaultMode fault) { fault_ = fault; }
  [[nodiscard]] FaultMode fault() const { return fault_; }
  /// Fault activates after this many compute() calls (default: active
  /// immediately).
  void setFaultOnset(std::size_t calls) { fault_onset_ = calls; }

 private:
  numerics::Matrix gain_;
  FaultMode fault_;
  std::size_t fault_onset_ = 0;
  std::size_t calls_ = 0;
  double last_output_ = 0.0;
  numerics::StateVector stale_state_;
  std::mt19937 rng_;
};

}  // namespace safeflow::simplex
