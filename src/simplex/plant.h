// Plant models for the Simplex runtime: the inverted pendulum on a cart
// (the paper's Fig. 1 system) and a double inverted pendulum on a cart
// (the paper's third evaluation system). The single pendulum integrates
// its full nonlinear dynamics with RK4; the double pendulum uses the
// standard linearization about the upright equilibrium — the paper's
// plants are physical lab rigs, and these simulations stand in for them
// (see DESIGN.md substitution table).
#pragma once

#include <string>
#include <vector>

#include "numerics/integrate.h"
#include "numerics/matrix.h"

namespace safeflow::simplex {

class Plant {
 public:
  virtual ~Plant() = default;

  [[nodiscard]] virtual std::size_t stateDim() const = 0;
  [[nodiscard]] virtual const numerics::StateVector& state() const = 0;
  virtual void setState(numerics::StateVector x) = 0;

  /// Advances the plant by dt under control input u (volts).
  virtual void step(double u, double dt) = 0;

  /// Linearization about the upright equilibrium (for LQR synthesis).
  [[nodiscard]] virtual numerics::Matrix linearA() const = 0;
  [[nodiscard]] virtual numerics::Matrix linearB() const = 0;

  /// True while the plant is within its physically safe operating range
  /// (pendulum near upright, track position within limits).
  [[nodiscard]] virtual bool isSafe() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

struct PendulumParams {
  double cart_mass = 0.455;      // kg
  double pole_mass = 0.21;       // kg
  double pole_length = 0.305;    // m (to center of mass)
  double gravity = 9.81;         // m/s^2
  double force_per_volt = 1.74;  // N/V actuator constant
  double track_limit = 0.4;      // m, |x| beyond this is unsafe
  double angle_limit = 0.6;      // rad, |theta| beyond this is unsafe
};

/// Cart-pole with full nonlinear dynamics. State: [x, xdot, theta,
/// thetadot]; theta = 0 is upright.
class InvertedPendulum final : public Plant {
 public:
  explicit InvertedPendulum(PendulumParams params = {});

  [[nodiscard]] std::size_t stateDim() const override { return 4; }
  [[nodiscard]] const numerics::StateVector& state() const override {
    return state_;
  }
  void setState(numerics::StateVector x) override;
  void step(double u, double dt) override;
  [[nodiscard]] numerics::Matrix linearA() const override;
  [[nodiscard]] numerics::Matrix linearB() const override;
  [[nodiscard]] bool isSafe() const override;
  [[nodiscard]] std::string name() const override {
    return "inverted-pendulum";
  }

  [[nodiscard]] const PendulumParams& params() const { return params_; }

 private:
  [[nodiscard]] numerics::StateVector dynamics(
      const numerics::StateVector& x, double u) const;

  PendulumParams params_;
  numerics::StateVector state_{0.0, 0.0, 0.05, 0.0};
};

struct DoublePendulumParams {
  double cart_mass = 0.6;
  double mass1 = 0.2;
  double mass2 = 0.15;
  double length1 = 0.25;
  double length2 = 0.25;
  double gravity = 9.81;
  double force_per_volt = 1.74;
  double track_limit = 0.5;
  double angle_limit = 0.35;  // rad for either link
};

/// Double inverted pendulum on a cart, linearized about upright. State:
/// [x, th1, th2, xdot, th1dot, th2dot].
class DoubleInvertedPendulum final : public Plant {
 public:
  explicit DoubleInvertedPendulum(DoublePendulumParams params = {});

  [[nodiscard]] std::size_t stateDim() const override { return 6; }
  [[nodiscard]] const numerics::StateVector& state() const override {
    return state_;
  }
  void setState(numerics::StateVector x) override;
  void step(double u, double dt) override;
  [[nodiscard]] numerics::Matrix linearA() const override { return A_; }
  [[nodiscard]] numerics::Matrix linearB() const override { return B_; }
  [[nodiscard]] bool isSafe() const override;
  [[nodiscard]] std::string name() const override {
    return "double-inverted-pendulum";
  }

 private:
  void buildLinearization();

  DoublePendulumParams params_;
  numerics::Matrix A_;
  numerics::Matrix B_;
  numerics::StateVector state_{0.0, 0.02, -0.02, 0.0, 0.0, 0.0};
};

}  // namespace safeflow::simplex
