// In-process emulation of the shared-memory channel between the core and
// non-core components (standing in for SysV shmget/shmat segments). The
// region records which side wrote each slot, enabling the fault injectors
// to model the paper's defect classes — e.g. the non-core component
// overwriting the (supposedly read-only) feedback slot to rig the
// recoverability check, or replacing a pid with the core's own.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace safeflow::simplex {

enum class Party { kCore, kNonCore };

/// The layout both components map: mirrors the SHMData pair of the
/// paper's Fig. 2/3 (feedback published by core, control published by
/// non-core), plus the pid slot exercised by the kill defect.
struct FeedbackSlot {
  double position = 0.0;
  double angle = 0.0;
  double angle2 = 0.0;  // used by the double pendulum
  double rate = 0.0;
  std::uint64_t seq = 0;
};

struct ControlSlot {
  double control = 0.0;
  std::uint64_t seq = 0;
  std::int32_t supervisor_pid = 0;  // pid the core signals on mode change
};

class SharedMemoryRegion {
 public:
  SharedMemoryRegion();

  // -- typed accessors, with per-party write accounting -------------------
  void writeFeedback(Party who, const FeedbackSlot& fb);
  [[nodiscard]] FeedbackSlot readFeedback() const { return feedback_; }

  void writeControl(Party who, const ControlSlot& ctl);
  [[nodiscard]] ControlSlot readControl() const { return control_; }

  /// Writes the pid slot only (the kill-defect channel).
  void writePid(Party who, std::int32_t pid);

  // -- accounting -----------------------------------------------------------
  [[nodiscard]] std::size_t writesBy(Party who) const;
  /// True when the non-core side ever wrote the feedback slot — the
  /// "rigged feedback" interaction the Generic Simplex error describes.
  [[nodiscard]] bool feedbackTamperedByNonCore() const {
    return feedback_tampered_;
  }
  [[nodiscard]] bool pidTamperedByNonCore() const { return pid_tampered_; }

  /// The paper's InitCheck: verifies declared slot extents are disjoint.
  /// Our typed layout is disjoint by construction; the check validates
  /// explicit (offset, size) declarations, as the analyzer demands.
  struct Extent {
    std::string name;
    std::size_t offset;
    std::size_t size;
  };
  static bool initCheck(const std::vector<Extent>& extents,
                        std::size_t total_size, std::string* error);

 private:
  FeedbackSlot feedback_;
  ControlSlot control_;
  std::size_t core_writes_ = 0;
  std::size_t noncore_writes_ = 0;
  bool feedback_tampered_ = false;
  bool pid_tampered_ = false;
};

}  // namespace safeflow::simplex
