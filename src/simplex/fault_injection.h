// Fault injectors acting on the shared-memory channel, modelling the
// defect classes of the paper's §4 evaluation:
//   kRigFeedback  non-core overwrites the (supposedly read-only) feedback
//                 slot so the recoverability check passes on bad data —
//                 the Generic Simplex error dependency;
//   kWritePid     non-core replaces the supervisor pid with the core's
//                 own pid, so the core kills itself — the error found in
//                 all three systems;
//   kStaleSeq     non-core never advances the control sequence number,
//                 modelling the synchronization assumptions the paper
//                 warns cannot be verified.
#pragma once

#include <cstdint>

#include "simplex/shared_memory.h"

namespace safeflow::simplex {

enum class ShmFault {
  kNone,
  kRigFeedback,
  kWritePid,
  kStaleSeq,
};

[[nodiscard]] std::string_view shmFaultName(ShmFault fault);

class ShmFaultInjector {
 public:
  explicit ShmFaultInjector(ShmFault fault = ShmFault::kNone,
                            std::int32_t core_pid = 4242)
      : fault_(fault), core_pid_(core_pid) {}

  /// Invoked after each non-core controller publication; mutates the
  /// region according to the configured fault.
  void afterNonCorePublish(SharedMemoryRegion& shm, std::uint64_t step);

  void setFault(ShmFault fault) { fault_ = fault; }
  [[nodiscard]] ShmFault fault() const { return fault_; }

 private:
  ShmFault fault_;
  std::int32_t core_pid_;
};

}  // namespace safeflow::simplex
