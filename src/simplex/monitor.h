// The run-time monitor of the Simplex architecture (paper §1): a Lyapunov
// stability envelope for the closed loop under the *safety* controller.
// A non-core control output is recoverable if applying it for one period
// leaves the state inside the envelope — i.e. the safety controller can
// still take over and stabilize. This is exactly the check the SafeFlow
// annotations designate as a monitoring function.
#pragma once

#include <optional>

#include "numerics/matrix.h"
#include "simplex/controllers.h"
#include "simplex/plant.h"

namespace safeflow::simplex {

struct MonitorDecision {
  bool accepted = false;
  double envelope_value_now = 0.0;    // x' P x at the current state
  double envelope_value_next = 0.0;   // after one period under u
  const char* reason = "";
};

class StabilityEnvelopeMonitor {
 public:
  /// Builds the envelope from the closed-loop dynamics under the safety
  /// controller: P solves the discrete Lyapunov equation for
  /// (Ad - Bd K); the envelope level is calibrated so the plant's safety
  /// limits sit on the boundary.
  StabilityEnvelopeMonitor(const Plant& plant, const LqrController& safety,
                           double dt, double output_limit_volts = 5.0);

  /// Checks whether applying `u` for one period keeps the system
  /// recoverable by the safety controller.
  [[nodiscard]] MonitorDecision check(const numerics::StateVector& x,
                                      double u) const;

  [[nodiscard]] double envelopeLevel() const { return level_; }
  [[nodiscard]] const numerics::Matrix& lyapunovMatrix() const { return P_; }
  [[nodiscard]] bool valid() const { return valid_; }

 private:
  [[nodiscard]] double evaluate(const numerics::StateVector& x) const;

  numerics::Matrix Ad_;
  numerics::Matrix Bd_;
  numerics::Matrix P_;
  double level_ = 0.0;
  double output_limit_;
  double dt_;
  bool valid_ = false;
};

}  // namespace safeflow::simplex
