// The Simplex runtime: periodic core loop (sensor → safety control →
// decision → actuate) with the non-core controller publishing through
// shared memory — an executable rendition of the paper's Fig. 1/2 system.
// The decision module exists in two variants:
//
//   safe        the monitor evaluates recoverability against the core's
//               locally-held sensor copy (the paper's recommended fix);
//   vulnerable  the monitor re-reads feedback from shared memory — the
//               exact unmonitored access SafeFlow flags in the running
//               example, exploitable by the rig-feedback injector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simplex/controllers.h"
#include "simplex/fault_injection.h"
#include "simplex/monitor.h"
#include "simplex/plant.h"
#include "simplex/shared_memory.h"

namespace safeflow::simplex {

struct RuntimeConfig {
  double dt = 0.02;        // 50 Hz control period
  double duration = 30.0;  // seconds of simulated time
  FaultMode controller_fault = FaultMode::kNone;
  std::size_t fault_onset_steps = 250;  // controller misbehaves after 5 s
  ShmFault shm_fault = ShmFault::kNone;
  bool vulnerable_decision = false;
  /// Simulate the mode-change signal: the core "kills" the process whose
  /// pid sits in shared memory. With the write-pid fault this becomes the
  /// core killing itself.
  bool simulate_kill_signal = false;
  double sensor_noise = 0.0005;
  std::uint32_t seed = 99;
  std::int32_t core_pid = 4242;
  std::int32_t supervisor_pid = 777;
};

struct RuntimeStats {
  std::size_t steps = 0;
  std::size_t noncore_used = 0;
  std::size_t noncore_rejected = 0;
  std::size_t safety_takeovers = 0;  // rejection streak starts
  bool remained_safe = true;
  bool core_killed_itself = false;
  double max_abs_angle = 0.0;
  double max_abs_position = 0.0;
  double control_effort = 0.0;  // sum |u| dt
  /// |angle| sampled every `trace_stride` steps (for the Fig.1 series).
  std::vector<double> angle_trace;
  std::size_t trace_stride = 25;

  [[nodiscard]] std::string summary() const;
};

class SimplexRuntime {
 public:
  SimplexRuntime(Plant& plant, RuntimeConfig config);

  /// Runs the closed loop for the configured duration (or until the plant
  /// leaves its safe range / the core kills itself).
  RuntimeStats run();

  [[nodiscard]] const SharedMemoryRegion& sharedMemory() const {
    return shm_;
  }

 private:
  Plant& plant_;
  RuntimeConfig config_;
  SharedMemoryRegion shm_;
};

}  // namespace safeflow::simplex
