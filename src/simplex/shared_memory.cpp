#include "simplex/shared_memory.h"

#include <algorithm>

namespace safeflow::simplex {

SharedMemoryRegion::SharedMemoryRegion() = default;

void SharedMemoryRegion::writeFeedback(Party who, const FeedbackSlot& fb) {
  feedback_ = fb;
  if (who == Party::kCore) {
    ++core_writes_;
  } else {
    ++noncore_writes_;
    feedback_tampered_ = true;
  }
}

void SharedMemoryRegion::writeControl(Party who, const ControlSlot& ctl) {
  // Preserve the pid slot unless the writer set it explicitly (pid 0 means
  // "leave as is"), so control updates do not clear supervisor wiring.
  const std::int32_t old_pid = control_.supervisor_pid;
  control_ = ctl;
  if (ctl.supervisor_pid == 0) control_.supervisor_pid = old_pid;
  if (who == Party::kCore) {
    ++core_writes_;
  } else {
    ++noncore_writes_;
    if (ctl.supervisor_pid != 0 && ctl.supervisor_pid != old_pid) {
      pid_tampered_ = true;
    }
  }
}

void SharedMemoryRegion::writePid(Party who, std::int32_t pid) {
  control_.supervisor_pid = pid;
  if (who == Party::kCore) {
    ++core_writes_;
  } else {
    ++noncore_writes_;
    pid_tampered_ = true;
  }
}

std::size_t SharedMemoryRegion::writesBy(Party who) const {
  return who == Party::kCore ? core_writes_ : noncore_writes_;
}

bool SharedMemoryRegion::initCheck(const std::vector<Extent>& extents,
                                   std::size_t total_size,
                                   std::string* error) {
  std::vector<Extent> sorted = extents;
  std::sort(sorted.begin(), sorted.end(),
            [](const Extent& a, const Extent& b) {
              return a.offset < b.offset;
            });
  std::size_t prev_end = 0;
  std::string prev_name;
  for (const Extent& e : sorted) {
    if (e.offset < prev_end) {
      if (error != nullptr) {
        *error = "region '" + e.name + "' overlaps region '" + prev_name +
                 "'";
      }
      return false;
    }
    if (e.offset + e.size > total_size) {
      if (error != nullptr) {
        *error = "region '" + e.name + "' exceeds the shared segment";
      }
      return false;
    }
    prev_end = e.offset + e.size;
    prev_name = e.name;
  }
  return true;
}

}  // namespace safeflow::simplex
