#include "simplex/plant.h"

#include <cmath>
#include <stdexcept>

namespace safeflow::simplex {

using numerics::Matrix;
using numerics::StateVector;

// ---------------------------------------------------------------------------
// Single inverted pendulum (nonlinear cart-pole)
// ---------------------------------------------------------------------------

InvertedPendulum::InvertedPendulum(PendulumParams params)
    : params_(params) {}

void InvertedPendulum::setState(StateVector x) {
  if (x.size() != 4) throw std::invalid_argument("state must be 4-d");
  state_ = std::move(x);
}

StateVector InvertedPendulum::dynamics(const StateVector& x,
                                       double u) const {
  const double M = params_.cart_mass;
  const double m = params_.pole_mass;
  const double l = params_.pole_length;
  const double g = params_.gravity;
  const double F = params_.force_per_volt * u;

  const double theta = x[2];
  const double thetadot = x[3];
  const double sin_t = std::sin(theta);
  const double cos_t = std::cos(theta);

  // Standard cart-pole equations (theta measured from upright).
  const double denom = M + m * sin_t * sin_t;
  const double xdd =
      (F + m * sin_t * (l * thetadot * thetadot - g * cos_t)) / denom;
  const double thetadd =
      (-F * cos_t - m * l * thetadot * thetadot * sin_t * cos_t +
       (M + m) * g * sin_t) /
      (l * denom);

  return StateVector{x[1], xdd, thetadot, thetadd};
}

void InvertedPendulum::step(double u, double dt) {
  if (!std::isfinite(u)) u = 0.0;  // a NaN command moves nothing
  state_ = numerics::rk4StepSub(
      [this](const StateVector& x, double input) {
        return dynamics(x, input);
      },
      state_, u, dt, 4);
}

Matrix InvertedPendulum::linearA() const {
  const double M = params_.cart_mass;
  const double m = params_.pole_mass;
  const double l = params_.pole_length;
  const double g = params_.gravity;
  // Linearized about theta = 0 (upright), thetadot = 0.
  return Matrix{{0, 1, 0, 0},
                {0, 0, -m * g / M, 0},
                {0, 0, 0, 1},
                {0, 0, (M + m) * g / (M * l), 0}};
}

Matrix InvertedPendulum::linearB() const {
  const double M = params_.cart_mass;
  const double l = params_.pole_length;
  const double kf = params_.force_per_volt;
  return Matrix{{0}, {kf / M}, {0}, {-kf / (M * l)}};
}

bool InvertedPendulum::isSafe() const {
  return std::abs(state_[0]) <= params_.track_limit &&
         std::abs(state_[2]) <= params_.angle_limit &&
         std::isfinite(state_[0]) && std::isfinite(state_[2]);
}

// ---------------------------------------------------------------------------
// Double inverted pendulum (linearized about upright)
// ---------------------------------------------------------------------------

DoubleInvertedPendulum::DoubleInvertedPendulum(DoublePendulumParams params)
    : params_(params) {
  buildLinearization();
}

void DoubleInvertedPendulum::buildLinearization() {
  // Linearized dynamics: D qdd + G q = H u with q = [x, th1, th2].
  const double M = params_.cart_mass;
  const double m1 = params_.mass1;
  const double m2 = params_.mass2;
  const double l1 = params_.length1;
  const double l2 = params_.length2;
  const double g = params_.gravity;

  // Mass matrix about the upright equilibrium.
  Matrix D{{M + m1 + m2, (m1 + 2 * m2) * l1, m2 * l2},
           {(m1 + 2 * m2) * l1, (m1 + 4 * m2) * l1 * l1, 2 * m2 * l1 * l2},
           {m2 * l2, 2 * m2 * l1 * l2, (4.0 / 3.0) * m2 * l2 * l2}};
  // Gravity stiffness (destabilizing, hence positive feedback on angles).
  Matrix G{{0, 0, 0},
           {0, -(m1 + 2 * m2) * g * l1, 0},
           {0, 0, -m2 * g * l2}};
  Matrix H{{params_.force_per_volt}, {0}, {0}};

  const Matrix Dinv = D.inverse();
  const Matrix DG = Dinv * G * -1.0;  // qdd = -Dinv G q + Dinv H u
  const Matrix DH = Dinv * H;

  A_ = Matrix::zeros(6, 6);
  B_ = Matrix::zeros(6, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    A_(i, i + 3) = 1.0;  // position derivatives
    for (std::size_t j = 0; j < 3; ++j) A_(i + 3, j) = DG(i, j);
    B_(i + 3, 0) = DH(i, 0);
  }
}

void DoubleInvertedPendulum::setState(StateVector x) {
  if (x.size() != 6) throw std::invalid_argument("state must be 6-d");
  state_ = std::move(x);
}

void DoubleInvertedPendulum::step(double u, double dt) {
  if (!std::isfinite(u)) u = 0.0;
  // Linear dynamics integrated with RK4 for consistency with the plant
  // interface.
  const auto f = [this](const StateVector& x, double input) {
    StateVector dx(6, 0.0);
    for (std::size_t i = 0; i < 6; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < 6; ++j) acc += A_(i, j) * x[j];
      acc += B_(i, 0) * input;
      dx[i] = acc;
    }
    return dx;
  };
  state_ = numerics::rk4StepSub(f, state_, u, dt, 4);
}

bool DoubleInvertedPendulum::isSafe() const {
  return std::abs(state_[0]) <= params_.track_limit &&
         std::abs(state_[1]) <= params_.angle_limit &&
         std::abs(state_[2]) <= params_.angle_limit &&
         std::isfinite(state_[0]) && std::isfinite(state_[1]) &&
         std::isfinite(state_[2]);
}

}  // namespace safeflow::simplex
