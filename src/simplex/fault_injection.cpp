#include "simplex/fault_injection.h"

namespace safeflow::simplex {

std::string_view shmFaultName(ShmFault fault) {
  switch (fault) {
    case ShmFault::kNone: return "none";
    case ShmFault::kRigFeedback: return "rig-feedback";
    case ShmFault::kWritePid: return "write-pid";
    case ShmFault::kStaleSeq: return "stale-seq";
  }
  return "?";
}

void ShmFaultInjector::afterNonCorePublish(SharedMemoryRegion& shm,
                                           std::uint64_t step) {
  switch (fault_) {
    case ShmFault::kNone:
      return;
    case ShmFault::kRigFeedback: {
      // Overwrite the published plant feedback with values that look
      // perfectly balanced, so any recoverability check that re-reads
      // feedback from shared memory is rigged into accepting.
      FeedbackSlot fake;
      fake.position = 0.0;
      fake.angle = 0.0;
      fake.angle2 = 0.0;
      fake.rate = 0.0;
      fake.seq = step;
      shm.writeFeedback(Party::kNonCore, fake);
      return;
    }
    case ShmFault::kWritePid:
      shm.writePid(Party::kNonCore, core_pid_);
      return;
    case ShmFault::kStaleSeq: {
      ControlSlot ctl = shm.readControl();
      ctl.seq = 0;  // never advances
      shm.writeControl(Party::kNonCore, ctl);
      return;
    }
  }
}

}  // namespace safeflow::simplex
