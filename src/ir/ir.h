// Typed three-address IR, structurally similar to (a small subset of) the
// LLVM IR the paper's prototype analyzed: a Module of Functions, each a CFG
// of BasicBlocks holding Instructions. After the mem2reg/SSA pass, scalar
// locals are in SSA form with Phi nodes; aggregates stay in memory and are
// addressed through FieldAddr/IndexAddr (GEP-like) instructions.
//
// Types are shared with the front end (const cfront::Type*). Ownership:
// Module owns Functions and GlobalVariables; Function owns BasicBlocks and
// its Arguments; BasicBlock owns Instructions. Operands are non-owning
// Value*.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cfront/types.h"
#include "support/source_location.h"

namespace safeflow::ir {

using cfront::Type;
using support::SourceLocation;

class Function;
class BasicBlock;
class Instruction;
class Module;

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

class Value {
 public:
  enum class Kind {
    kArgument,
    kConstantInt,
    kConstantFloat,
    kConstantString,
    kGlobalVar,
    kFunction,
    kUndef,
    kInstruction,
  };

  virtual ~Value() = default;
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const Type* type() const { return type_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  [[nodiscard]] bool isInstruction() const {
    return kind_ == Kind::kInstruction;
  }

 protected:
  Value(Kind kind, const Type* type, std::string name = {})
      : kind_(kind), type_(type), name_(std::move(name)) {}

 private:
  Kind kind_;
  const Type* type_;
  std::string name_;
};

class Argument final : public Value {
 public:
  Argument(const Type* type, std::string name, Function* parent,
           unsigned index)
      : Value(Kind::kArgument, type, std::move(name)),
        parent_(parent),
        index_(index) {}
  [[nodiscard]] Function* parent() const { return parent_; }
  [[nodiscard]] unsigned index() const { return index_; }

 private:
  Function* parent_;
  unsigned index_;
};

class ConstantInt final : public Value {
 public:
  ConstantInt(std::int64_t value, const Type* type)
      : Value(Kind::kConstantInt, type), value_(value) {}
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_;
};

class ConstantFloat final : public Value {
 public:
  ConstantFloat(double value, const Type* type)
      : Value(Kind::kConstantFloat, type), value_(value) {}
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_;
};

class ConstantString final : public Value {
 public:
  ConstantString(std::string text, const Type* type)
      : Value(Kind::kConstantString, type), text_(std::move(text)) {}
  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  std::string text_;
};

/// A value that is never defined (unreachable merges, error recovery).
class Undef final : public Value {
 public:
  explicit Undef(const Type* type) : Value(Kind::kUndef, type) {}
};

/// A module-level variable. Its Value type is pointer-to-contents (like
/// LLVM): loading through it yields the variable's value.
class GlobalVar final : public Value {
 public:
  GlobalVar(std::string name, const Type* value_type,
            const Type* pointer_type, SourceLocation loc)
      : Value(Kind::kGlobalVar, pointer_type, std::move(name)),
        value_type_(value_type),
        loc_(loc) {}
  [[nodiscard]] const Type* valueType() const { return value_type_; }
  [[nodiscard]] SourceLocation location() const { return loc_; }

 private:
  const Type* value_type_;
  SourceLocation loc_;
};

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

enum class Opcode {
  kAlloca,     // stack slot; result is pointer to allocatedType
  kLoad,       // (ptr)
  kStore,      // (value, ptr) — no result
  kBinOp,      // (lhs, rhs)
  kUnOp,       // (operand)
  kCmp,        // (lhs, rhs) — integer result
  kCast,       // (operand) to result type
  kFieldAddr,  // (base_ptr) + field index into struct -> field pointer
  kIndexAddr,  // (base_ptr, index) -> element pointer
  kCall,       // (callee?, args...) — callee null for direct calls
  kPhi,        // (incoming values; blocks parallel)
  kBr,         // unconditional; successor block
  kCondBr,     // (cond); two successor blocks
  kRet,        // (value?) — no result
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
};

enum class UnOp { kNeg, kNot, kBitNot };

enum class CmpOp { kLt, kGt, kLe, kGe, kEq, kNe };

class Instruction final : public Value {
 public:
  Instruction(Opcode op, const Type* type, SourceLocation loc)
      : Value(Kind::kInstruction, type), opcode_(op), loc_(loc) {}

  [[nodiscard]] Opcode opcode() const { return opcode_; }
  [[nodiscard]] SourceLocation location() const { return loc_; }
  [[nodiscard]] BasicBlock* parent() const { return parent_; }
  void setParent(BasicBlock* bb) { parent_ = bb; }

  [[nodiscard]] const std::vector<Value*>& operands() const {
    return operands_;
  }
  [[nodiscard]] Value* operand(std::size_t i) const { return operands_[i]; }
  void addOperand(Value* v) { operands_.push_back(v); }
  void setOperand(std::size_t i, Value* v) { operands_[i] = v; }
  [[nodiscard]] std::size_t numOperands() const { return operands_.size(); }

  /// Replaces every operand equal to `from` with `to`.
  void replaceUsesOf(Value* from, Value* to);

  // -- opcode-specific payloads --------------------------------------------
  // kAlloca
  const Type* allocated_type = nullptr;
  // kBinOp / kUnOp / kCmp
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  CmpOp cmp_op = CmpOp::kEq;
  // kFieldAddr
  unsigned field_index = 0;
  // kCall: direct callee (null for indirect calls through operand 0)
  Function* direct_callee = nullptr;
  // kBr / kCondBr successors; kPhi incoming blocks (parallel to operands)
  std::vector<BasicBlock*> block_refs;

  [[nodiscard]] bool isTerminator() const {
    return opcode_ == Opcode::kBr || opcode_ == Opcode::kCondBr ||
           opcode_ == Opcode::kRet;
  }

 private:
  Opcode opcode_;
  SourceLocation loc_;
  BasicBlock* parent_ = nullptr;
  std::vector<Value*> operands_;
};

// ---------------------------------------------------------------------------
// BasicBlock / Function / Module
// ---------------------------------------------------------------------------

class BasicBlock {
 public:
  BasicBlock(std::string label, Function* parent)
      : label_(std::move(label)), parent_(parent) {}

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] Function* parent() const { return parent_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Instruction>>&
  instructions() const {
    return insts_;
  }

  Instruction* append(std::unique_ptr<Instruction> inst);
  Instruction* prepend(std::unique_ptr<Instruction> inst);
  /// Removes (and destroys) the instruction; it must belong to this block.
  void erase(Instruction* inst);

  [[nodiscard]] Instruction* terminator() const;
  [[nodiscard]] std::vector<BasicBlock*> successors() const;
  /// Predecessors are recomputed by scanning the parent function.
  [[nodiscard]] std::vector<BasicBlock*> predecessors() const;

 private:
  std::string label_;
  Function* parent_;
  std::vector<std::unique_ptr<Instruction>> insts_;
};

/// Attributes attached from SafeFlow annotations during lowering.
struct FunctionAnnotations {
  bool is_shminit = false;
  // assume(core(...)) facts are lowered to safeflow.assume.core intrinsic
  // calls in the entry block; this records only the flag that any exist.
  bool is_monitor = false;
};

class Function {
 public:
  Function(std::string name, const cfront::FunctionType* type, Module* parent)
      : name_(std::move(name)), type_(type), parent_(parent) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const cfront::FunctionType* functionType() const {
    return type_;
  }
  [[nodiscard]] Module* parent() const { return parent_; }
  [[nodiscard]] bool isDefined() const { return !blocks_.empty(); }

  [[nodiscard]] const std::vector<std::unique_ptr<Argument>>& args() const {
    return args_;
  }
  Argument* addArg(const Type* type, std::string name);

  [[nodiscard]] const std::vector<std::unique_ptr<BasicBlock>>& blocks()
      const {
    return blocks_;
  }
  [[nodiscard]] BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  BasicBlock* createBlock(std::string label);

  FunctionAnnotations annotations;
  SourceLocation location;

  /// True for the SafeFlow annotation intrinsics (safeflow.assume.core &c).
  [[nodiscard]] bool isIntrinsic() const {
    return name_.rfind("safeflow.", 0) == 0;
  }

 private:
  std::string name_;
  const cfront::FunctionType* type_;
  Module* parent_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

class Module {
 public:
  explicit Module(cfront::TypeContext& types) : types_(types) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] cfront::TypeContext& types() const { return types_; }

  Function* getOrCreateFunction(const std::string& name,
                                const cfront::FunctionType* type);
  [[nodiscard]] Function* findFunction(const std::string& name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<Function>>& functions()
      const {
    return functions_;
  }

  GlobalVar* getOrCreateGlobal(const std::string& name,
                               const Type* value_type, SourceLocation loc);
  [[nodiscard]] GlobalVar* findGlobal(const std::string& name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<GlobalVar>>& globals()
      const {
    return globals_;
  }

  // Constant pool — constants are uniqued per (value, type).
  ConstantInt* constantInt(std::int64_t value, const Type* type);
  ConstantFloat* constantFloat(double value, const Type* type);
  ConstantString* constantString(std::string text);
  Undef* undef(const Type* type);

 private:
  cfront::TypeContext& types_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::unique_ptr<GlobalVar>> globals_;
  std::map<std::string, Function*> function_map_;
  std::map<std::string, GlobalVar*> global_map_;
  std::map<std::pair<std::int64_t, const Type*>, std::unique_ptr<ConstantInt>>
      int_constants_;
  std::vector<std::unique_ptr<ConstantFloat>> float_constants_;
  std::vector<std::unique_ptr<ConstantString>> string_constants_;
  std::map<const Type*, std::unique_ptr<Undef>> undefs_;
};

/// Names of the annotation intrinsics emitted by the lowerer.
inline constexpr std::string_view kIntrinsicAssumeCore =
    "safeflow.assume.core";
inline constexpr std::string_view kIntrinsicAssertSafe =
    "safeflow.assert.safe";
inline constexpr std::string_view kIntrinsicShmVar = "safeflow.shmvar";
inline constexpr std::string_view kIntrinsicNonCore = "safeflow.noncore";

}  // namespace safeflow::ir
