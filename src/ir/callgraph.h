// Call graph with Tarjan SCCs, providing the bottom-up / top-down
// traversal orders used by the paper's interprocedural phases.
// Indirect calls (through function pointers) are resolved conservatively
// to every address-taken function.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "ir/ir.h"

namespace safeflow::ir {

class CallGraph {
 public:
  explicit CallGraph(const Module& module);

  [[nodiscard]] const std::set<const Function*>& callees(
      const Function* fn) const;
  [[nodiscard]] const std::set<const Function*>& callers(
      const Function* fn) const;

  /// Possible targets of one call instruction (singleton for direct calls).
  [[nodiscard]] std::vector<const Function*> targets(
      const Instruction& call) const;

  /// Strongly connected components in bottom-up (callee-first) order.
  [[nodiscard]] const std::vector<std::vector<const Function*>>&
  sccsBottomUp() const {
    return sccs_;
  }
  /// The same SCCs in top-down (caller-first) order.
  [[nodiscard]] std::vector<std::vector<const Function*>> sccsTopDown() const;

  /// True when fn participates in a cycle (including self-recursion).
  [[nodiscard]] bool isRecursive(const Function* fn) const;

 private:
  void computeSccs();

  const Module& module_;
  std::map<const Function*, std::set<const Function*>> callees_;
  std::map<const Function*, std::set<const Function*>> callers_;
  std::vector<const Function*> address_taken_;
  std::vector<std::vector<const Function*>> sccs_;
  std::set<const Function*> recursive_;
  std::set<const Function*> empty_;
};

}  // namespace safeflow::ir
