#include "ir/ssa.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "ir/dominators.h"
#include "support/metrics.h"

namespace safeflow::ir {

namespace {

/// An alloca is promotable when it holds a scalar and its address is used
/// only as the pointer operand of loads and stores.
bool isPromotable(const Instruction* alloca, const Function& fn) {
  if (alloca->allocated_type == nullptr ||
      !alloca->allocated_type->isScalar()) {
    return false;
  }
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      for (std::size_t i = 0; i < inst->numOperands(); ++i) {
        if (inst->operand(i) != alloca) continue;
        if (inst->opcode() == Opcode::kLoad && i == 0) continue;
        if (inst->opcode() == Opcode::kStore && i == 1) continue;
        return false;  // address escapes
      }
    }
  }
  return true;
}

struct Renamer {
  Function& fn;
  Module& module;
  const DominatorTree& domtree;
  // Per-alloca reaching definition stack entry is handled via a map of
  // current values snapshotted along the dom-tree walk.
  std::vector<const Instruction*> allocas;
  std::map<const Instruction*, std::size_t> alloca_index;
  std::map<const Instruction*, const Instruction*> phi_home;  // phi->alloca
  std::set<Instruction*> dead;
  SsaStats stats;

  void renameBlock(BasicBlock* bb, std::vector<Value*> current) {
    for (const auto& inst_ptr : bb->instructions()) {
      Instruction* inst = inst_ptr.get();
      if (inst->opcode() == Opcode::kPhi) {
        auto it = phi_home.find(inst);
        if (it != phi_home.end()) {
          current[alloca_index.at(it->second)] = inst;
        }
        continue;
      }
      if (inst->opcode() == Opcode::kLoad && inst->numOperands() == 1 &&
          inst->operand(0)->isInstruction()) {
        auto it = alloca_index.find(
            static_cast<const Instruction*>(inst->operand(0)));
        if (it != alloca_index.end()) {
          Value* reaching = current[it->second];
          if (reaching == nullptr) {
            reaching = module.undef(inst->type());
          }
          // Replace all uses of this load with the reaching definition.
          replaceEverywhere(inst, reaching);
          dead.insert(inst);
          ++stats.loads_removed;
          continue;
        }
      }
      if (inst->opcode() == Opcode::kStore && inst->numOperands() == 2 &&
          inst->operand(1)->isInstruction()) {
        auto it = alloca_index.find(
            static_cast<const Instruction*>(inst->operand(1)));
        if (it != alloca_index.end()) {
          current[it->second] = inst->operand(0);
          dead.insert(inst);
          ++stats.stores_removed;
          continue;
        }
      }
    }

    // Feed phi operands of successors.
    for (BasicBlock* succ : bb->successors()) {
      for (const auto& inst_ptr : succ->instructions()) {
        Instruction* inst = inst_ptr.get();
        if (inst->opcode() != Opcode::kPhi) break;  // phis lead the block
        auto it = phi_home.find(inst);
        if (it == phi_home.end()) continue;
        Value* v = current[alloca_index.at(it->second)];
        if (v == nullptr) v = module.undef(inst->type());
        inst->addOperand(v);
        inst->block_refs.push_back(bb);
      }
    }

    for (const BasicBlock* child : domtree.children(bb)) {
      renameBlock(const_cast<BasicBlock*>(child), current);
    }
  }

  void replaceEverywhere(Value* from, Value* to) {
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst : bb->instructions()) {
        inst->replaceUsesOf(from, to);
      }
    }
  }
};

}  // namespace

SsaStats promoteToSsa(Function& fn, Module& module) {
  SsaStats stats;
  if (!fn.isDefined()) return stats;
  const DominatorTree domtree = DominatorTree::compute(fn);

  // Collect promotable allocas (they all live in the entry block).
  std::vector<Instruction*> allocas;
  for (const auto& inst : fn.entry()->instructions()) {
    if (inst->opcode() == Opcode::kAlloca && isPromotable(inst.get(), fn)) {
      allocas.push_back(inst.get());
    }
  }
  if (allocas.empty()) return stats;
  stats.promoted_allocas = allocas.size();

  // Phi insertion on iterated dominance frontiers of defining blocks.
  Renamer renamer{fn, module, domtree, {}, {}, {}, {}, stats};
  for (std::size_t i = 0; i < allocas.size(); ++i) {
    renamer.allocas.push_back(allocas[i]);
    renamer.alloca_index[allocas[i]] = i;
  }

  for (Instruction* alloca : allocas) {
    // Blocks containing a store to this alloca.
    std::set<BasicBlock*> def_blocks;
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() == Opcode::kStore && inst->numOperands() == 2 &&
            inst->operand(1) == alloca) {
          def_blocks.insert(bb.get());
        }
      }
    }
    std::set<const BasicBlock*> has_phi;
    std::vector<BasicBlock*> work(def_blocks.begin(), def_blocks.end());
    while (!work.empty()) {
      BasicBlock* bb = work.back();
      work.pop_back();
      auto it = domtree.frontiers().find(bb);
      if (it == domtree.frontiers().end()) continue;
      for (const BasicBlock* frontier : it->second) {
        if (has_phi.contains(frontier)) continue;
        has_phi.insert(frontier);
        auto phi = std::make_unique<Instruction>(
            Opcode::kPhi, alloca->allocated_type, alloca->location());
        phi->setName(alloca->name() + ".phi");
        Instruction* phi_raw =
            const_cast<BasicBlock*>(frontier)->prepend(std::move(phi));
        renamer.phi_home[phi_raw] = alloca;
        ++renamer.stats.phis_inserted;
        if (!def_blocks.contains(const_cast<BasicBlock*>(frontier))) {
          work.push_back(const_cast<BasicBlock*>(frontier));
        }
      }
    }
  }

  // Rename along the dominator tree.
  renamer.renameBlock(fn.entry(),
                      std::vector<Value*>(allocas.size(), nullptr));

  // Blocks unreachable from the entry (error-recovery artifacts, code
  // after a return) are outside the dominator tree, so the walk above
  // never renamed them. Their accesses to promoted allocas must still be
  // rewritten — the allocas are about to be deleted, and a surviving use
  // would dangle. Unreachable code never executes, so undef is sound.
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      Instruction* inst = inst_ptr.get();
      if (renamer.dead.contains(inst)) continue;
      if (inst->opcode() == Opcode::kLoad && inst->numOperands() == 1 &&
          inst->operand(0)->isInstruction() &&
          renamer.alloca_index.contains(
              static_cast<const Instruction*>(inst->operand(0)))) {
        renamer.replaceEverywhere(inst, module.undef(inst->type()));
        renamer.dead.insert(inst);
        ++renamer.stats.loads_removed;
      } else if (inst->opcode() == Opcode::kStore &&
                 inst->numOperands() == 2 &&
                 inst->operand(1)->isInstruction() &&
                 renamer.alloca_index.contains(
                     static_cast<const Instruction*>(inst->operand(1)))) {
        renamer.dead.insert(inst);
        ++renamer.stats.stores_removed;
      }
    }
  }

  // Delete dead loads/stores and the promoted allocas.
  for (const auto& bb : fn.blocks()) {
    std::vector<Instruction*> to_erase;
    for (const auto& inst : bb->instructions()) {
      if (renamer.dead.contains(inst.get())) to_erase.push_back(inst.get());
    }
    for (Instruction* inst : to_erase) bb->erase(inst);
  }
  for (Instruction* alloca : allocas) fn.entry()->erase(alloca);

  return renamer.stats;
}

SsaStats promoteModuleToSsa(Module& module) {
  const support::ScopedTimer timer("phase.ssa");
  SsaStats total;
  for (const auto& fn : module.functions()) {
    if (!fn->isDefined()) continue;
    const SsaStats s = promoteToSsa(*fn, module);
    total.promoted_allocas += s.promoted_allocas;
    total.phis_inserted += s.phis_inserted;
    total.loads_removed += s.loads_removed;
    total.stores_removed += s.stores_removed;
  }
  SAFEFLOW_COUNT_N("ssa.promoted_allocas", total.promoted_allocas);
  SAFEFLOW_COUNT_N("ssa.phis_inserted", total.phis_inserted);
  SAFEFLOW_COUNT_N("ssa.loads_removed", total.loads_removed);
  SAFEFLOW_COUNT_N("ssa.stores_removed", total.stores_removed);
  return total;
}

std::string verifySsa(const Function& fn) {
  if (!fn.isDefined()) return {};
  const DominatorTree domtree = DominatorTree::compute(fn);

  // Map each instruction to its defining block and intra-block position.
  std::map<const Value*, std::pair<const BasicBlock*, std::size_t>> defs;
  for (const auto& bb : fn.blocks()) {
    for (std::size_t i = 0; i < bb->instructions().size(); ++i) {
      defs[bb->instructions()[i].get()] = {bb.get(), i};
    }
  }

  for (const auto& bb : fn.blocks()) {
    for (std::size_t i = 0; i < bb->instructions().size(); ++i) {
      const Instruction* inst = bb->instructions()[i].get();
      for (std::size_t oi = 0; oi < inst->numOperands(); ++oi) {
        const Value* op = inst->operand(oi);
        if (!op->isInstruction()) continue;
        auto it = defs.find(op);
        if (it == defs.end()) {
          return "operand of '" + inst->name() + "' in " + bb->label() +
                 " is not defined in this function";
        }
        const auto [def_bb, def_pos] = it->second;
        if (inst->opcode() == Opcode::kPhi) {
          // Phi operand must be defined in a block dominating the incoming
          // edge's source.
          if (oi < inst->block_refs.size()) {
            const BasicBlock* incoming = inst->block_refs[oi];
            if (!domtree.dominates(def_bb, incoming)) {
              return "phi operand does not dominate incoming edge in " +
                     bb->label();
            }
          }
          continue;
        }
        if (def_bb == bb.get()) {
          if (def_pos >= i) {
            return "use before def inside block " + bb->label();
          }
        } else if (!domtree.dominates(def_bb, bb.get())) {
          return "definition in " + def_bb->label() +
                 " does not dominate use in " + bb->label();
        }
      }
    }
  }
  return {};
}

}  // namespace safeflow::ir
