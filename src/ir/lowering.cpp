#include "ir/lowering.h"

#include <cassert>

#include "support/metrics.h"

namespace safeflow::ir {

namespace {

using cfront::Expr;
using cfront::Stmt;

BinOp lowerBinOp(cfront::BinaryOp op) {
  switch (op) {
    case cfront::BinaryOp::kAdd: return BinOp::kAdd;
    case cfront::BinaryOp::kSub: return BinOp::kSub;
    case cfront::BinaryOp::kMul: return BinOp::kMul;
    case cfront::BinaryOp::kDiv: return BinOp::kDiv;
    case cfront::BinaryOp::kRem: return BinOp::kRem;
    case cfront::BinaryOp::kBitAnd: return BinOp::kAnd;
    case cfront::BinaryOp::kBitOr: return BinOp::kOr;
    case cfront::BinaryOp::kBitXor: return BinOp::kXor;
    case cfront::BinaryOp::kShl: return BinOp::kShl;
    case cfront::BinaryOp::kShr: return BinOp::kShr;
    // Unexpected op (possible on error-recovery AST): fall back to kAdd —
    // wrong arithmetic on an already-diagnosed TU, never UB.
    default: return BinOp::kAdd;
  }
}

CmpOp lowerCmpOp(cfront::BinaryOp op) {
  switch (op) {
    case cfront::BinaryOp::kLt: return CmpOp::kLt;
    case cfront::BinaryOp::kGt: return CmpOp::kGt;
    case cfront::BinaryOp::kLe: return CmpOp::kLe;
    case cfront::BinaryOp::kGe: return CmpOp::kGe;
    case cfront::BinaryOp::kEq: return CmpOp::kEq;
    case cfront::BinaryOp::kNe: return CmpOp::kNe;
    // Same rationale as lowerBinOp's default.
    default: return CmpOp::kEq;
  }
}

bool isComparison(cfront::BinaryOp op) {
  switch (op) {
    case cfront::BinaryOp::kLt:
    case cfront::BinaryOp::kGt:
    case cfront::BinaryOp::kLe:
    case cfront::BinaryOp::kGe:
    case cfront::BinaryOp::kEq:
    case cfront::BinaryOp::kNe:
      return true;
    default:
      return false;
  }
}

}  // namespace

Lowering::Lowering(const cfront::TranslationUnit& tu, Module& module,
                   support::DiagnosticEngine& diags)
    : tu_(tu),
      module_(module),
      diags_(diags),
      annot_parser_(tu.types(), tu.typedefs(), diags) {}

bool Lowering::run() {
  const support::ScopedTimer timer("phase.lowering");
  const std::size_t errors_before = diags_.errorCount();
  lowerGlobals();
  // Declare every function first so calls resolve without ordering issues.
  for (const auto& fd : tu_.functions()) functionFor(*fd);
  for (const auto& fd : tu_.functions()) {
    if (fd->isDefined()) {
      SAFEFLOW_COUNT("lowering.functions");
      lowerFunction(*fd);
    }
  }
  return diags_.errorCount() == errors_before;
}

void Lowering::lowerGlobals() {
  for (const auto& g : tu_.globals()) {
    module_.getOrCreateGlobal(g->name(), g->type(), g->location());
  }
}

Function* Lowering::functionFor(const cfront::FunctionDecl& fd) {
  Function* fn = module_.getOrCreateFunction(fd.name(), fd.functionType());
  if (fn->args().empty() && !fd.params().empty()) {
    for (const auto& p : fd.params()) fn->addArg(p->type(), p->name());
  }
  if (fn->location == SourceLocation{}) fn->location = fd.location();
  return fn;
}

Function* Lowering::intrinsic(std::string_view name) {
  const cfront::FunctionType* ft = module_.types().functionType(
      module_.types().voidType(), {}, /*variadic=*/true);
  return module_.getOrCreateFunction(std::string(name), ft);
}

Instruction* Lowering::emit(Opcode op, const Type* type, SourceLocation loc) {
  if (block_ == nullptr) {
    // Error recovery can reach an expression with no live block (e.g. a
    // recovered statement after a terminator); absorb the instructions
    // into a detached block instead of dereferencing null.
    block_ =
        fn_->createBlock("unreachable." + std::to_string(label_counter_++));
  }
  auto inst = std::make_unique<Instruction>(op, type, loc);
  return block_->append(std::move(inst));
}

Value* Lowering::emitLoad(Value* ptr, SourceLocation loc) {
  const Type* pointee = module_.types().intType();
  if (ptr->type()->isPointer()) {
    pointee = static_cast<const cfront::PointerType*>(ptr->type())->pointee();
  }
  Instruction* load = emit(Opcode::kLoad, pointee, loc);
  load->addOperand(ptr);
  return load;
}

void Lowering::emitStore(Value* value, Value* ptr, SourceLocation loc) {
  Instruction* store = emit(Opcode::kStore, module_.types().voidType(), loc);
  store->addOperand(value);
  store->addOperand(ptr);
}

Value* Lowering::emitCast(Value* v, const Type* to, SourceLocation loc) {
  Instruction* cast = emit(Opcode::kCast, to, loc);
  cast->addOperand(v);
  return cast;
}

Value* Lowering::coerce(Value* v, const Type* to, SourceLocation loc) {
  if (v->type() == to || to == nullptr || to->isVoid()) return v;
  if (!v->type()->isScalar() || !to->isScalar()) return v;
  return emitCast(v, to, loc);
}

bool Lowering::blockTerminated() const {
  return block_ == nullptr || block_->terminator() != nullptr;
}

void Lowering::branchTo(BasicBlock* target, SourceLocation loc) {
  if (blockTerminated()) return;
  Instruction* br = emit(Opcode::kBr, module_.types().voidType(), loc);
  br->block_refs.push_back(target);
}

void Lowering::condBranch(Value* cond, BasicBlock* then_bb,
                          BasicBlock* else_bb, SourceLocation loc) {
  if (blockTerminated()) return;
  Instruction* br = emit(Opcode::kCondBr, module_.types().voidType(), loc);
  br->addOperand(cond);
  br->block_refs.push_back(then_bb);
  br->block_refs.push_back(else_bb);
}

Instruction* Lowering::createLocalSlot(const cfront::VarDecl& vd) {
  auto inst = std::make_unique<Instruction>(
      Opcode::kAlloca, module_.types().pointerTo(vd.type()), vd.location());
  inst->allocated_type = vd.type();
  inst->setName(vd.name());
  Instruction* slot = entry_->prepend(std::move(inst));
  slots_[&vd] = slot;
  return slot;
}

void Lowering::lowerFunction(const cfront::FunctionDecl& fd) {
  fn_ = functionFor(fd);
  if (fn_->isDefined()) return;  // already lowered (duplicate definition)
  slots_.clear();
  break_targets_.clear();
  continue_targets_.clear();
  label_counter_ = 0;

  entry_ = fn_->createBlock("entry");
  block_ = entry_;

  // Parameters: spill each Argument into a local slot so the body can take
  // addresses / reassign; mem2reg re-promotes the scalar ones.
  for (std::size_t i = 0; i < fd.params().size(); ++i) {
    const cfront::VarDecl* p = fd.params()[i].get();
    Instruction* slot = createLocalSlot(*p);
    if (i < fn_->args().size()) {
      emitStore(fn_->args()[i].get(), slot, p->location());
    }
  }

  lowerEntryAnnotations(fd, *fn_);

  assert(fd.body() != nullptr);
  lowerStmt(*fd.body());

  // Seal dangling blocks with a return.
  for (const auto& bb : fn_->blocks()) {
    if (bb->terminator() == nullptr) {
      BasicBlock* saved = block_;
      block_ = bb.get();
      Instruction* ret =
          emit(Opcode::kRet, module_.types().voidType(), fd.location());
      const Type* ret_t = fd.functionType()->returnType();
      if (!ret_t->isVoid()) ret->addOperand(module_.undef(ret_t));
      block_ = saved;
    }
  }
  fn_ = nullptr;
  block_ = nullptr;
}

void Lowering::lowerEntryAnnotations(const cfront::FunctionDecl& fd,
                                     Function& fn) {
  for (const cfront::RawAnnotation& raw : fd.entryAnnotations()) {
    const auto parsed = annot_parser_.parse(raw);
    if (!parsed.has_value()) continue;
    switch (parsed->kind) {
      case annotations::AnnotationKind::kShmInit:
        fn.annotations.is_shminit = true;
        break;
      case annotations::AnnotationKind::kAssumeCore: {
        fn.annotations.is_monitor = true;
        Value* addr = addressOfNamed(parsed->pointer_name, raw.location);
        if (addr == nullptr) break;
        Value* ptr = emitLoad(addr, raw.location);
        Instruction* call =
            emit(Opcode::kCall, module_.types().voidType(), raw.location);
        call->direct_callee = intrinsic(kIntrinsicAssumeCore);
        call->addOperand(ptr);
        call->addOperand(module_.constantInt(parsed->offset,
                                             module_.types().longType()));
        call->addOperand(
            module_.constantInt(parsed->size, module_.types().longType()));
        break;
      }
      default:
        // shmvar/noncore/assert make sense in statement position; accept
        // them here too for flexibility.
        lowerAnnotation(raw);
        break;
    }
  }
}

void Lowering::lowerAnnotation(const cfront::RawAnnotation& raw) {
  const auto parsed = annot_parser_.parse(raw);
  if (!parsed.has_value()) return;
  switch (parsed->kind) {
    case annotations::AnnotationKind::kAssertSafe: {
      Value* addr = addressOfNamed(parsed->value_name, raw.location);
      if (addr == nullptr) return;
      Value* v = emitLoad(addr, raw.location);
      Instruction* call =
          emit(Opcode::kCall, module_.types().voidType(), raw.location);
      call->direct_callee = intrinsic(kIntrinsicAssertSafe);
      call->addOperand(v);
      // Keep the source-level name of the asserted variable on the call so
      // reports can say which critical value was checked.
      call->setName(parsed->value_name);
      return;
    }
    case annotations::AnnotationKind::kShmVar: {
      Value* addr = addressOfNamed(parsed->pointer_name, raw.location);
      if (addr == nullptr) return;
      Value* ptr = emitLoad(addr, raw.location);
      Instruction* call =
          emit(Opcode::kCall, module_.types().voidType(), raw.location);
      call->direct_callee = intrinsic(kIntrinsicShmVar);
      call->addOperand(ptr);
      call->addOperand(
          module_.constantInt(parsed->size, module_.types().longType()));
      return;
    }
    case annotations::AnnotationKind::kNonCore: {
      Value* addr = addressOfNamed(parsed->pointer_name, raw.location);
      if (addr == nullptr) return;
      Value* ptr = emitLoad(addr, raw.location);
      Instruction* call =
          emit(Opcode::kCall, module_.types().voidType(), raw.location);
      call->direct_callee = intrinsic(kIntrinsicNonCore);
      call->addOperand(ptr);
      return;
    }
    case annotations::AnnotationKind::kShmInit:
      fn_->annotations.is_shminit = true;
      return;
    case annotations::AnnotationKind::kAssumeCore: {
      fn_->annotations.is_monitor = true;
      Value* addr = addressOfNamed(parsed->pointer_name, raw.location);
      if (addr == nullptr) return;
      Value* ptr = emitLoad(addr, raw.location);
      Instruction* call =
          emit(Opcode::kCall, module_.types().voidType(), raw.location);
      call->direct_callee = intrinsic(kIntrinsicAssumeCore);
      call->addOperand(ptr);
      call->addOperand(
          module_.constantInt(parsed->offset, module_.types().longType()));
      call->addOperand(
          module_.constantInt(parsed->size, module_.types().longType()));
      return;
    }
  }
}

Value* Lowering::addressOfNamed(const std::string& name,
                                SourceLocation loc) {
  for (const auto& [decl, slot] : slots_) {
    if (decl->name() == name) return slot;
  }
  if (GlobalVar* g = module_.findGlobal(name)) return g;
  diags_.error(loc, "annotation",
               "annotation references unknown variable '" + name + "'");
  return nullptr;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Lowering::lowerStmt(const Stmt& stmt) {
  if (block_ == nullptr) {
    // Unreachable code after return/break; keep lowering into a detached
    // block so diagnostics and def-use stay well-formed.
    block_ = fn_->createBlock("unreachable." + std::to_string(label_counter_++));
  }
  switch (stmt.kind()) {
    case Stmt::Kind::kCompound:
      lowerCompound(static_cast<const cfront::CompoundStmt&>(stmt));
      return;
    case Stmt::Kind::kDecl:
      lowerDecl(static_cast<const cfront::DeclStmt&>(stmt));
      return;
    case Stmt::Kind::kExpr:
      if (const auto* e = static_cast<const cfront::ExprStmt&>(stmt).expr()) {
        rvalue(*e);
      }
      return;
    case Stmt::Kind::kIf:
      lowerIf(static_cast<const cfront::IfStmt&>(stmt));
      return;
    case Stmt::Kind::kWhile:
      lowerWhile(static_cast<const cfront::WhileStmt&>(stmt));
      return;
    case Stmt::Kind::kDo:
      lowerDo(static_cast<const cfront::DoStmt&>(stmt));
      return;
    case Stmt::Kind::kFor:
      lowerFor(static_cast<const cfront::ForStmt&>(stmt));
      return;
    case Stmt::Kind::kSwitch:
      lowerSwitch(static_cast<const cfront::SwitchStmt&>(stmt));
      return;
    case Stmt::Kind::kReturn:
      lowerReturn(static_cast<const cfront::ReturnStmt&>(stmt));
      return;
    case Stmt::Kind::kBreak:
      if (!break_targets_.empty()) {
        branchTo(break_targets_.back(), stmt.location());
      } else {
        diags_.error(stmt.location(), "lower", "break outside loop/switch");
      }
      block_ = nullptr;
      return;
    case Stmt::Kind::kContinue:
      if (!continue_targets_.empty()) {
        branchTo(continue_targets_.back(), stmt.location());
      } else {
        diags_.error(stmt.location(), "lower", "continue outside loop");
      }
      block_ = nullptr;
      return;
    case Stmt::Kind::kCase:
      // Handled inside lowerSwitch; elsewhere it is a stray label.
      diags_.error(stmt.location(), "lower", "case label outside switch");
      return;
    case Stmt::Kind::kNull:
      return;
    case Stmt::Kind::kAnnotation:
      lowerAnnotation(
          static_cast<const cfront::AnnotationStmt&>(stmt).annotation());
      return;
  }
}

void Lowering::lowerCompound(const cfront::CompoundStmt& s) {
  for (const auto& sub : s.stmts()) lowerStmt(*sub);
}

void Lowering::lowerDecl(const cfront::DeclStmt& s) {
  for (const auto& vd : s.decls()) {
    Instruction* slot = createLocalSlot(*vd);
    if (vd->init() == nullptr) continue;
    if (vd->init()->kind() == Expr::Kind::kInitList) {
      lowerInitList(slot,
                    static_cast<const cfront::InitListExpr&>(*vd->init()),
                    vd->type());
      continue;
    }
    Value* v = rvalue(*vd->init());
    emitStore(coerce(v, vd->type(), vd->location()), slot, vd->location());
  }
}

void Lowering::lowerInitList(Value* addr,
                             const cfront::InitListExpr& list,
                             const cfront::Type* type) {
  if (type->isArray()) {
    const auto* at = static_cast<const cfront::ArrayType*>(type);
    // View the array storage as a pointer to its element type.
    Value* base = emitCast(
        addr, module_.types().pointerTo(at->element()), list.location());
    for (std::size_t i = 0; i < list.items().size(); ++i) {
      Instruction* gep = emit(Opcode::kIndexAddr, base->type(),
                              list.location());
      gep->addOperand(base);
      gep->addOperand(module_.constantInt(static_cast<std::int64_t>(i),
                                          module_.types().intType()));
      const cfront::Expr* item = list.items()[i].get();
      if (item->kind() == Expr::Kind::kInitList) {
        lowerInitList(gep, static_cast<const cfront::InitListExpr&>(*item),
                      at->element());
      } else {
        Value* v = rvalue(*item);
        emitStore(coerce(v, at->element(), item->location()), gep,
                  item->location());
      }
    }
    return;
  }
  if (type->isStruct()) {
    const auto* st = static_cast<const cfront::StructType*>(type);
    for (std::size_t i = 0;
         i < list.items().size() && i < st->fields().size(); ++i) {
      const cfront::StructField& field = st->fields()[i];
      Instruction* gep = emit(Opcode::kFieldAddr,
                              module_.types().pointerTo(field.type),
                              list.location());
      gep->field_index = static_cast<unsigned>(i);
      gep->addOperand(addr);
      const cfront::Expr* item = list.items()[i].get();
      if (item->kind() == Expr::Kind::kInitList) {
        lowerInitList(gep, static_cast<const cfront::InitListExpr&>(*item),
                      field.type);
      } else {
        Value* v = rvalue(*item);
        emitStore(coerce(v, field.type, item->location()), gep,
                  item->location());
      }
    }
    return;
  }
  // Scalar initialized with a (possibly singleton) brace list.
  if (!list.items().empty()) {
    Value* v = rvalue(*list.items().front());
    emitStore(coerce(v, type, list.location()), addr, list.location());
  }
}

void Lowering::lowerIf(const cfront::IfStmt& s) {
  const unsigned n = label_counter_++;
  BasicBlock* then_bb = fn_->createBlock("if.then." + std::to_string(n));
  BasicBlock* end_bb = fn_->createBlock("if.end." + std::to_string(n));
  BasicBlock* else_bb =
      s.elseStmt() ? fn_->createBlock("if.else." + std::to_string(n)) : end_bb;

  Value* cond = rvalue(*s.cond());
  condBranch(cond, then_bb, else_bb, s.location());

  setBlock(then_bb);
  if (s.thenStmt() != nullptr) lowerStmt(*s.thenStmt());
  branchTo(end_bb, s.location());

  if (s.elseStmt() != nullptr) {
    setBlock(else_bb);
    lowerStmt(*s.elseStmt());
    branchTo(end_bb, s.location());
  }
  setBlock(end_bb);
}

void Lowering::lowerWhile(const cfront::WhileStmt& s) {
  const unsigned n = label_counter_++;
  BasicBlock* cond_bb = fn_->createBlock("while.cond." + std::to_string(n));
  BasicBlock* body_bb = fn_->createBlock("while.body." + std::to_string(n));
  BasicBlock* end_bb = fn_->createBlock("while.end." + std::to_string(n));

  branchTo(cond_bb, s.location());
  setBlock(cond_bb);
  Value* cond = rvalue(*s.cond());
  condBranch(cond, body_bb, end_bb, s.location());

  break_targets_.push_back(end_bb);
  continue_targets_.push_back(cond_bb);
  setBlock(body_bb);
  if (s.body() != nullptr) lowerStmt(*s.body());
  branchTo(cond_bb, s.location());
  break_targets_.pop_back();
  continue_targets_.pop_back();

  setBlock(end_bb);
}

void Lowering::lowerDo(const cfront::DoStmt& s) {
  const unsigned n = label_counter_++;
  BasicBlock* body_bb = fn_->createBlock("do.body." + std::to_string(n));
  BasicBlock* cond_bb = fn_->createBlock("do.cond." + std::to_string(n));
  BasicBlock* end_bb = fn_->createBlock("do.end." + std::to_string(n));

  branchTo(body_bb, s.location());
  break_targets_.push_back(end_bb);
  continue_targets_.push_back(cond_bb);
  setBlock(body_bb);
  if (s.body() != nullptr) lowerStmt(*s.body());
  branchTo(cond_bb, s.location());
  break_targets_.pop_back();
  continue_targets_.pop_back();

  setBlock(cond_bb);
  Value* cond = rvalue(*s.cond());
  condBranch(cond, body_bb, end_bb, s.location());
  setBlock(end_bb);
}

void Lowering::lowerFor(const cfront::ForStmt& s) {
  const unsigned n = label_counter_++;
  BasicBlock* cond_bb = fn_->createBlock("for.cond." + std::to_string(n));
  BasicBlock* body_bb = fn_->createBlock("for.body." + std::to_string(n));
  BasicBlock* step_bb = fn_->createBlock("for.step." + std::to_string(n));
  BasicBlock* end_bb = fn_->createBlock("for.end." + std::to_string(n));

  if (s.init() != nullptr) lowerStmt(*s.init());
  branchTo(cond_bb, s.location());

  setBlock(cond_bb);
  if (s.cond() != nullptr) {
    Value* cond = rvalue(*s.cond());
    condBranch(cond, body_bb, end_bb, s.location());
  } else {
    branchTo(body_bb, s.location());
  }

  break_targets_.push_back(end_bb);
  continue_targets_.push_back(step_bb);
  setBlock(body_bb);
  if (s.body() != nullptr) lowerStmt(*s.body());
  branchTo(step_bb, s.location());
  break_targets_.pop_back();
  continue_targets_.pop_back();

  setBlock(step_bb);
  if (s.step() != nullptr) rvalue(*s.step());
  branchTo(cond_bb, s.location());

  setBlock(end_bb);
}

void Lowering::lowerSwitch(const cfront::SwitchStmt& s) {
  const unsigned n = label_counter_++;
  Value* cond = rvalue(*s.cond());
  BasicBlock* dispatch = block_;
  BasicBlock* end_bb = fn_->createBlock("switch.end." + std::to_string(n));

  if (s.body() == nullptr || s.body()->kind() != Stmt::Kind::kCompound) {
    diags_.error(s.location(), "lower",
                 "switch body must be a compound statement");
    setBlock(end_bb);
    return;
  }
  const auto& body = static_cast<const cfront::CompoundStmt&>(*s.body());

  // Lower the body into a chain of blocks, one starting at each case
  // label; record (value, block) pairs. Fallthrough is the natural edge.
  struct CaseTarget {
    std::optional<std::int64_t> value;
    BasicBlock* block;
  };
  std::vector<CaseTarget> cases;
  break_targets_.push_back(end_bb);
  block_ = nullptr;
  for (const auto& sub : body.stmts()) {
    if (sub->kind() == Stmt::Kind::kCase) {
      const auto& cs = static_cast<const cfront::CaseStmt&>(*sub);
      BasicBlock* case_bb = fn_->createBlock(
          "switch.case." + std::to_string(n) + "." +
          std::to_string(cases.size()));
      if (block_ != nullptr) branchTo(case_bb, cs.location());  // fallthrough
      setBlock(case_bb);
      cases.push_back(CaseTarget{
          cs.isDefault() ? std::nullopt : std::optional(cs.value()),
          case_bb});
      continue;
    }
    lowerStmt(*sub);
  }
  if (block_ != nullptr) branchTo(end_bb, s.location());
  break_targets_.pop_back();

  // Emit the dispatch chain in the block where the switch appeared.
  setBlock(dispatch);
  BasicBlock* default_bb = end_bb;
  for (const CaseTarget& c : cases) {
    if (!c.value.has_value()) default_bb = c.block;
  }
  for (const CaseTarget& c : cases) {
    if (!c.value.has_value()) continue;
    Instruction* cmp =
        emit(Opcode::kCmp, module_.types().intType(), s.location());
    cmp->cmp_op = CmpOp::kEq;
    cmp->addOperand(cond);
    cmp->addOperand(
        module_.constantInt(*c.value, module_.types().longType()));
    BasicBlock* next =
        fn_->createBlock("switch.test." + std::to_string(n) + "." +
                         std::to_string(label_counter_++));
    condBranch(cmp, c.block, next, s.location());
    setBlock(next);
  }
  branchTo(default_bb, s.location());
  setBlock(end_bb);
}

void Lowering::lowerReturn(const cfront::ReturnStmt& s) {
  Instruction* ret =
      emit(Opcode::kRet, module_.types().voidType(), s.location());
  if (s.value() != nullptr) {
    // Emit the value first, then attach (emit order: value before ret).
    block_->erase(ret);
    Value* v = rvalue(*s.value());
    v = coerce(v, fn_->functionType()->returnType(), s.location());
    Instruction* ret2 =
        emit(Opcode::kRet, module_.types().voidType(), s.location());
    ret2->addOperand(v);
  }
  block_ = nullptr;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value* Lowering::rvalue(const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kIntLit:
      return module_.constantInt(
          static_cast<const cfront::IntLitExpr&>(e).value(), e.type());
    case Expr::Kind::kFloatLit:
      return module_.constantFloat(
          static_cast<const cfront::FloatLitExpr&>(e).value(), e.type());
    case Expr::Kind::kStringLit:
      return module_.constantString(
          static_cast<const cfront::StringLitExpr&>(e).value());
    case Expr::Kind::kSizeof:
      return module_.constantInt(
          static_cast<std::int64_t>(
              static_cast<const cfront::SizeofExpr&>(e).value()),
          e.type());
    case Expr::Kind::kDeclRef: {
      const auto& ref = static_cast<const cfront::DeclRefExpr&>(e);
      if (ref.decl()->kind() == cfront::ValueDecl::Kind::kFunction) {
        const auto& fd =
            static_cast<const cfront::FunctionDecl&>(*ref.decl());
        // Taking a function as a value: resolve to the IR function; it is
        // represented as itself (pointer semantics handled by caller).
        Function* target = module_.findFunction(fd.name());
        if (target == nullptr) target = functionFor(fd);
        // Functions are not Values in this IR; represent the address as a
        // ConstantString-like unique token via a dedicated global.
        GlobalVar* fn_addr = module_.getOrCreateGlobal(
            "@fnaddr." + fd.name(), fd.type(), fd.location());
        return fn_addr;
      }
      const auto& vd = static_cast<const cfront::VarDecl&>(*ref.decl());
      Value* addr = lvalue(e);
      if (addr == nullptr) return module_.undef(e.type());
      if (vd.type()->isArray()) return addr;  // decay: address of first elt
      return emitLoad(addr, e.location());
    }
    case Expr::Kind::kUnary: {
      const auto& u = static_cast<const cfront::UnaryExpr&>(e);
      switch (u.op()) {
        case cfront::UnaryOp::kAddrOf: {
          // lvalue() returns null for storage-less operands (already
          // diagnosed); an undef address keeps the operand list dense.
          Value* addr = lvalue(*u.operand());
          return addr == nullptr ? module_.undef(e.type()) : addr;
        }
        case cfront::UnaryOp::kDeref: {
          Value* addr = lvalue(e);
          if (addr == nullptr) return module_.undef(e.type());
          if (e.type()->isArray() || e.type()->isStruct()) return addr;
          return emitLoad(addr, e.location());
        }
        case cfront::UnaryOp::kPreInc:
        case cfront::UnaryOp::kPreDec:
        case cfront::UnaryOp::kPostInc:
        case cfront::UnaryOp::kPostDec:
          return lowerIncDec(u);
        case cfront::UnaryOp::kNeg: {
          Value* v = rvalue(*u.operand());
          Instruction* inst = emit(Opcode::kUnOp, e.type(), e.location());
          inst->un_op = UnOp::kNeg;
          inst->addOperand(v);
          return inst;
        }
        case cfront::UnaryOp::kLogNot: {
          Value* v = rvalue(*u.operand());
          Instruction* inst = emit(Opcode::kUnOp, e.type(), e.location());
          inst->un_op = UnOp::kNot;
          inst->addOperand(v);
          return inst;
        }
        case cfront::UnaryOp::kBitNot: {
          Value* v = rvalue(*u.operand());
          Instruction* inst = emit(Opcode::kUnOp, e.type(), e.location());
          inst->un_op = UnOp::kBitNot;
          inst->addOperand(v);
          return inst;
        }
      }
      return module_.undef(e.type());
    }
    case Expr::Kind::kBinary:
      return lowerBinary(static_cast<const cfront::BinaryExpr&>(e));
    case Expr::Kind::kAssign:
      return lowerAssign(static_cast<const cfront::AssignExpr&>(e));
    case Expr::Kind::kConditional:
      return lowerConditional(
          static_cast<const cfront::ConditionalExpr&>(e));
    case Expr::Kind::kCall:
      return lowerCall(static_cast<const cfront::CallExpr&>(e));
    case Expr::Kind::kSubscript:
    case Expr::Kind::kMember: {
      Value* addr = lvalue(e);
      if (addr == nullptr) return module_.undef(e.type());
      if (e.type()->isArray() || e.type()->isStruct()) return addr;
      return emitLoad(addr, e.location());
    }
    case Expr::Kind::kCast: {
      const auto& c = static_cast<const cfront::CastExpr&>(e);
      Value* v = rvalue(*c.operand());
      return emitCast(v, e.type(), e.location());
    }
    case Expr::Kind::kInitList:
      diags_.error(e.location(), "lower",
                   "initializer list only allowed in declarations");
      return module_.undef(e.type());
  }
  return module_.undef(e.type());
}

Value* Lowering::lvalue(const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kDeclRef: {
      const auto& ref = static_cast<const cfront::DeclRefExpr&>(e);
      auto it = slots_.find(ref.decl());
      if (it != slots_.end()) return it->second;
      if (GlobalVar* g = module_.findGlobal(ref.decl()->name())) return g;
      diags_.error(e.location(), "lower",
                   "no storage for '" + ref.decl()->name() + "'");
      return nullptr;
    }
    case Expr::Kind::kUnary: {
      const auto& u = static_cast<const cfront::UnaryExpr&>(e);
      if (u.op() == cfront::UnaryOp::kDeref) return rvalue(*u.operand());
      break;
    }
    case Expr::Kind::kSubscript: {
      const auto& s = static_cast<const cfront::SubscriptExpr&>(e);
      Value* base = rvalue(*s.base());  // decayed pointer
      Value* index = rvalue(*s.index());
      Instruction* gep = emit(Opcode::kIndexAddr,
                              module_.types().pointerTo(e.type()),
                              e.location());
      gep->addOperand(base);
      gep->addOperand(index);
      return gep;
    }
    case Expr::Kind::kMember: {
      const auto& m = static_cast<const cfront::MemberExpr&>(e);
      Value* base_addr =
          m.isArrow() ? rvalue(*m.base()) : lvalue(*m.base());
      if (base_addr == nullptr) return nullptr;
      // Find the struct type to resolve the field index.
      const Type* base_t = m.base()->type();
      if (m.isArrow() && base_t->isPointer()) {
        base_t = static_cast<const cfront::PointerType*>(base_t)->pointee();
      }
      if (!base_t->isStruct()) return nullptr;
      const auto* st = static_cast<const cfront::StructType*>(base_t);
      const int idx = st->fieldIndex(m.member());
      if (idx < 0) return nullptr;
      Instruction* gep = emit(Opcode::kFieldAddr,
                              module_.types().pointerTo(e.type()),
                              e.location());
      gep->field_index = static_cast<unsigned>(idx);
      gep->addOperand(base_addr);
      return gep;
    }
    case Expr::Kind::kCast: {
      // (T*)p used as lvalue target — lower operand as lvalue.
      const auto& c = static_cast<const cfront::CastExpr&>(e);
      return lvalue(*c.operand());
    }
    default:
      break;
  }
  diags_.error(e.location(), "lower", "expression is not an lvalue");
  return nullptr;
}

Value* Lowering::lowerBinary(const cfront::BinaryExpr& e) {
  if (e.op() == cfront::BinaryOp::kLogAnd ||
      e.op() == cfront::BinaryOp::kLogOr) {
    return lowerShortCircuit(e);
  }
  if (e.op() == cfront::BinaryOp::kComma) {
    rvalue(*e.lhs());
    return rvalue(*e.rhs());
  }
  Value* lhs = rvalue(*e.lhs());
  Value* rhs = rvalue(*e.rhs());

  if (isComparison(e.op())) {
    Instruction* cmp = emit(Opcode::kCmp, e.type(), e.location());
    cmp->cmp_op = lowerCmpOp(e.op());
    cmp->addOperand(lhs);
    cmp->addOperand(rhs);
    return cmp;
  }

  // Pointer arithmetic lowers to IndexAddr so shm offsets stay trackable.
  const bool lhs_ptr = lhs->type()->isPointer();
  const bool rhs_ptr = rhs->type()->isPointer();
  if ((e.op() == cfront::BinaryOp::kAdd ||
       e.op() == cfront::BinaryOp::kSub) &&
      (lhs_ptr || rhs_ptr) && !(lhs_ptr && rhs_ptr)) {
    Value* ptr = lhs_ptr ? lhs : rhs;
    Value* idx = lhs_ptr ? rhs : lhs;
    if (e.op() == cfront::BinaryOp::kSub) {
      Instruction* neg =
          emit(Opcode::kUnOp, idx->type(), e.location());
      neg->un_op = UnOp::kNeg;
      neg->addOperand(idx);
      idx = neg;
    }
    Instruction* gep = emit(Opcode::kIndexAddr, ptr->type(), e.location());
    gep->addOperand(ptr);
    gep->addOperand(idx);
    return gep;
  }
  if (lhs_ptr && rhs_ptr && e.op() == cfront::BinaryOp::kSub) {
    // Pointer difference: representable as casts to long + subtraction.
    Value* li = emitCast(lhs, module_.types().longType(), e.location());
    Value* ri = emitCast(rhs, module_.types().longType(), e.location());
    Instruction* sub = emit(Opcode::kBinOp, e.type(), e.location());
    sub->bin_op = BinOp::kSub;
    sub->addOperand(li);
    sub->addOperand(ri);
    return sub;
  }

  lhs = coerce(lhs, e.type(), e.location());
  rhs = coerce(rhs, e.type(), e.location());
  Instruction* inst = emit(Opcode::kBinOp, e.type(), e.location());
  inst->bin_op = lowerBinOp(e.op());
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return inst;
}

Value* Lowering::lowerShortCircuit(const cfront::BinaryExpr& e) {
  const unsigned n = label_counter_++;
  const bool is_and = e.op() == cfront::BinaryOp::kLogAnd;
  // Temp slot holding the boolean result; mem2reg turns it into a phi.
  auto tmp = std::make_unique<Instruction>(
      Opcode::kAlloca, module_.types().pointerTo(module_.types().intType()),
      e.location());
  tmp->allocated_type = module_.types().intType();
  tmp->setName("sc.tmp." + std::to_string(n));
  Instruction* slot = entry_->prepend(std::move(tmp));

  BasicBlock* rhs_bb = fn_->createBlock("sc.rhs." + std::to_string(n));
  BasicBlock* end_bb = fn_->createBlock("sc.end." + std::to_string(n));

  Value* lhs = rvalue(*e.lhs());
  // Normalize to 0/1 and store as the result if we short-circuit.
  Instruction* lhs_bool = emit(Opcode::kCmp, e.type(), e.location());
  lhs_bool->cmp_op = CmpOp::kNe;
  lhs_bool->addOperand(lhs);
  lhs_bool->addOperand(module_.constantInt(0, module_.types().intType()));
  emitStore(lhs_bool, slot, e.location());
  if (is_and) {
    condBranch(lhs_bool, rhs_bb, end_bb, e.location());
  } else {
    condBranch(lhs_bool, end_bb, rhs_bb, e.location());
  }

  setBlock(rhs_bb);
  Value* rhs = rvalue(*e.rhs());
  Instruction* rhs_bool = emit(Opcode::kCmp, e.type(), e.location());
  rhs_bool->cmp_op = CmpOp::kNe;
  rhs_bool->addOperand(rhs);
  rhs_bool->addOperand(module_.constantInt(0, module_.types().intType()));
  emitStore(rhs_bool, slot, e.location());
  branchTo(end_bb, e.location());

  setBlock(end_bb);
  return emitLoad(slot, e.location());
}

Value* Lowering::lowerConditional(const cfront::ConditionalExpr& e) {
  const unsigned n = label_counter_++;
  auto tmp = std::make_unique<Instruction>(
      Opcode::kAlloca, module_.types().pointerTo(e.type()), e.location());
  tmp->allocated_type = e.type();
  tmp->setName("cond.tmp." + std::to_string(n));
  Instruction* slot = entry_->prepend(std::move(tmp));

  BasicBlock* then_bb = fn_->createBlock("cond.then." + std::to_string(n));
  BasicBlock* else_bb = fn_->createBlock("cond.else." + std::to_string(n));
  BasicBlock* end_bb = fn_->createBlock("cond.end." + std::to_string(n));

  Value* cond = rvalue(*e.cond());
  condBranch(cond, then_bb, else_bb, e.location());

  setBlock(then_bb);
  Value* tv = rvalue(*e.thenExpr());
  emitStore(coerce(tv, e.type(), e.location()), slot, e.location());
  branchTo(end_bb, e.location());

  setBlock(else_bb);
  Value* ev = rvalue(*e.elseExpr());
  emitStore(coerce(ev, e.type(), e.location()), slot, e.location());
  branchTo(end_bb, e.location());

  setBlock(end_bb);
  return emitLoad(slot, e.location());
}

Value* Lowering::lowerAssign(const cfront::AssignExpr& e) {
  Value* addr = lvalue(*e.lhs());
  if (addr == nullptr) return module_.undef(e.type());
  Value* result = nullptr;
  if (e.compoundOp().has_value()) {
    Value* old = emitLoad(addr, e.location());
    Value* rhs = rvalue(*e.rhs());
    const cfront::BinaryOp op = *e.compoundOp();
    if (old->type()->isPointer() &&
        (op == cfront::BinaryOp::kAdd || op == cfront::BinaryOp::kSub)) {
      if (op == cfront::BinaryOp::kSub) {
        Instruction* neg = emit(Opcode::kUnOp, rhs->type(), e.location());
        neg->un_op = UnOp::kNeg;
        neg->addOperand(rhs);
        rhs = neg;
      }
      Instruction* gep = emit(Opcode::kIndexAddr, old->type(), e.location());
      gep->addOperand(old);
      gep->addOperand(rhs);
      result = gep;
    } else {
      rhs = coerce(rhs, e.type(), e.location());
      Instruction* inst = emit(Opcode::kBinOp, e.type(), e.location());
      inst->bin_op = lowerBinOp(op);
      inst->addOperand(old);
      inst->addOperand(rhs);
      result = inst;
    }
  } else {
    result = coerce(rvalue(*e.rhs()), e.type(), e.location());
  }
  emitStore(result, addr, e.location());
  return result;
}

Value* Lowering::lowerIncDec(const cfront::UnaryExpr& e) {
  Value* addr = lvalue(*e.operand());
  if (addr == nullptr) return module_.undef(e.type());
  Value* old = emitLoad(addr, e.location());
  const bool inc = e.op() == cfront::UnaryOp::kPreInc ||
                   e.op() == cfront::UnaryOp::kPostInc;
  Value* updated = nullptr;
  if (old->type()->isPointer()) {
    Instruction* gep = emit(Opcode::kIndexAddr, old->type(), e.location());
    gep->addOperand(old);
    gep->addOperand(
        module_.constantInt(inc ? 1 : -1, module_.types().intType()));
    updated = gep;
  } else {
    Instruction* inst = emit(Opcode::kBinOp, old->type(), e.location());
    inst->bin_op = inc ? BinOp::kAdd : BinOp::kSub;
    inst->addOperand(old);
    inst->addOperand(module_.constantInt(1, old->type()));
    updated = inst;
  }
  emitStore(updated, addr, e.location());
  const bool is_pre = e.op() == cfront::UnaryOp::kPreInc ||
                      e.op() == cfront::UnaryOp::kPreDec;
  return is_pre ? updated : old;
}

Value* Lowering::lowerCall(const cfront::CallExpr& e) {
  Function* direct = nullptr;
  Value* indirect = nullptr;
  if (e.callee()->kind() == Expr::Kind::kDeclRef) {
    const auto& ref = static_cast<const cfront::DeclRefExpr&>(*e.callee());
    if (ref.decl()->kind() == cfront::ValueDecl::Kind::kFunction) {
      const auto& fd = static_cast<const cfront::FunctionDecl&>(*ref.decl());
      direct = functionFor(fd);
    }
  }
  if (direct == nullptr) indirect = rvalue(*e.callee());

  std::vector<Value*> args;
  args.reserve(e.args().size());
  for (const auto& a : e.args()) args.push_back(rvalue(*a));

  Instruction* call = emit(Opcode::kCall, e.type(), e.location());
  call->direct_callee = direct;
  if (indirect != nullptr) call->addOperand(indirect);
  for (Value* a : args) call->addOperand(a);
  return call;
}

}  // namespace safeflow::ir
