// Dominator and post-dominator trees (iterative Cooper–Harvey–Kennedy),
// plus dominance frontiers — the ingredients for SSA construction and for
// control-dependence analysis.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "ir/ir.h"

namespace safeflow::ir {

class DominatorTree {
 public:
  /// Forward dominators rooted at the entry block.
  static DominatorTree compute(const Function& fn);
  /// Post-dominators; a virtual exit joins all Ret blocks (and, for
  /// infinite loops, blocks with no path to any exit are parented to the
  /// virtual exit as a conservative fallback).
  static DominatorTree computePost(const Function& fn);

  /// Immediate dominator; nullptr for the root (or for blocks whose idom
  /// is the virtual exit in the post-dominator tree).
  [[nodiscard]] const BasicBlock* idom(const BasicBlock* bb) const;
  /// Reflexive dominance query.
  [[nodiscard]] bool dominates(const BasicBlock* a,
                               const BasicBlock* b) const;
  /// Dominance frontier of each block.
  [[nodiscard]] const std::map<const BasicBlock*,
                               std::set<const BasicBlock*>>&
  frontiers() const {
    return frontiers_;
  }

  /// Children in the dominator tree.
  [[nodiscard]] std::vector<const BasicBlock*> children(
      const BasicBlock* bb) const;

 private:
  static DominatorTree computeImpl(const Function& fn, bool post);

  std::map<const BasicBlock*, const BasicBlock*> idom_;
  std::map<const BasicBlock*, std::set<const BasicBlock*>> frontiers_;
};

}  // namespace safeflow::ir
