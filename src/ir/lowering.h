// AST → IR lowering. Produces a CFG of non-SSA instructions (locals as
// allocas); the SSA pass (ssa.h) then promotes scalars. SafeFlow
// annotations are lowered to calls to the safeflow.* intrinsic functions,
// mirroring the paper's "annotations become calls to external dummy
// functions" preprocessing.
#pragma once

#include <map>

#include "annotations/annotation.h"
#include "cfront/ast.h"
#include "ir/ir.h"
#include "support/diagnostics.h"

namespace safeflow::ir {

class Lowering {
 public:
  Lowering(const cfront::TranslationUnit& tu, Module& module,
           support::DiagnosticEngine& diags);

  /// Lowers every defined function and all globals. Returns false when
  /// lowering reported errors.
  bool run();

 private:
  // -- emission helpers -------------------------------------------------
  Instruction* emit(Opcode op, const Type* type, SourceLocation loc);
  Value* emitLoad(Value* ptr, SourceLocation loc);
  void emitStore(Value* value, Value* ptr, SourceLocation loc);
  Value* emitCast(Value* v, const Type* to, SourceLocation loc);
  /// Inserts a numeric conversion only when types differ.
  Value* coerce(Value* v, const Type* to, SourceLocation loc);
  void setBlock(BasicBlock* bb) { block_ = bb; }
  void branchTo(BasicBlock* target, SourceLocation loc);
  void condBranch(Value* cond, BasicBlock* then_bb, BasicBlock* else_bb,
                  SourceLocation loc);
  [[nodiscard]] bool blockTerminated() const;

  // -- declarations ------------------------------------------------------
  void lowerGlobals();
  void lowerFunction(const cfront::FunctionDecl& fd);
  Function* functionFor(const cfront::FunctionDecl& fd);
  Function* intrinsic(std::string_view name);
  void lowerEntryAnnotations(const cfront::FunctionDecl& fd, Function& fn);
  void lowerAnnotation(const cfront::RawAnnotation& raw);

  // -- statements ---------------------------------------------------------
  void lowerStmt(const cfront::Stmt& stmt);
  void lowerCompound(const cfront::CompoundStmt& s);
  void lowerIf(const cfront::IfStmt& s);
  void lowerWhile(const cfront::WhileStmt& s);
  void lowerDo(const cfront::DoStmt& s);
  void lowerFor(const cfront::ForStmt& s);
  void lowerSwitch(const cfront::SwitchStmt& s);
  void lowerReturn(const cfront::ReturnStmt& s);
  void lowerDecl(const cfront::DeclStmt& s);

  // -- expressions ----------------------------------------------------------
  Value* rvalue(const cfront::Expr& e);
  Value* lvalue(const cfront::Expr& e);
  Value* lowerCall(const cfront::CallExpr& e);
  Value* lowerBinary(const cfront::BinaryExpr& e);
  Value* lowerShortCircuit(const cfront::BinaryExpr& e);
  Value* lowerAssign(const cfront::AssignExpr& e);
  Value* lowerIncDec(const cfront::UnaryExpr& e);
  Value* lowerConditional(const cfront::ConditionalExpr& e);
  /// Resolves a variable name (annotation argument) in the current
  /// function's scope (params, locals, then globals). Returns its address.
  Value* addressOfNamed(const std::string& name, SourceLocation loc);

  /// Adds an entry-block alloca for a local and remembers it.
  Instruction* createLocalSlot(const cfront::VarDecl& vd);
  /// Element-wise initialization from a brace list into `addr`.
  void lowerInitList(Value* addr, const cfront::InitListExpr& list,
                     const cfront::Type* type);

  const cfront::TranslationUnit& tu_;
  Module& module_;
  support::DiagnosticEngine& diags_;
  annotations::AnnotationParser annot_parser_;

  Function* fn_ = nullptr;
  BasicBlock* block_ = nullptr;
  BasicBlock* entry_ = nullptr;
  std::map<const cfront::ValueDecl*, Value*> slots_;  // decl -> address
  std::vector<BasicBlock*> break_targets_;
  std::vector<BasicBlock*> continue_targets_;
  unsigned label_counter_ = 0;
};

}  // namespace safeflow::ir
