#include "ir/ir.h"

#include <algorithm>
#include <cassert>

namespace safeflow::ir {

void Instruction::replaceUsesOf(Value* from, Value* to) {
  for (Value*& op : operands_) {
    if (op == from) op = to;
  }
}

Instruction* BasicBlock::append(std::unique_ptr<Instruction> inst) {
  inst->setParent(this);
  insts_.push_back(std::move(inst));
  return insts_.back().get();
}

Instruction* BasicBlock::prepend(std::unique_ptr<Instruction> inst) {
  inst->setParent(this);
  insts_.insert(insts_.begin(), std::move(inst));
  return insts_.front().get();
}

void BasicBlock::erase(Instruction* inst) {
  const auto it = std::find_if(
      insts_.begin(), insts_.end(),
      [inst](const std::unique_ptr<Instruction>& p) { return p.get() == inst; });
  assert(it != insts_.end() && "erasing instruction from wrong block");
  insts_.erase(it);
}

Instruction* BasicBlock::terminator() const {
  if (insts_.empty()) return nullptr;
  Instruction* last = insts_.back().get();
  return last->isTerminator() ? last : nullptr;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  Instruction* term = terminator();
  if (term == nullptr) return {};
  return term->block_refs;
}

std::vector<BasicBlock*> BasicBlock::predecessors() const {
  std::vector<BasicBlock*> preds;
  for (const auto& bb : parent_->blocks()) {
    const std::vector<BasicBlock*> succs = bb->successors();
    if (std::find(succs.begin(), succs.end(), this) != succs.end()) {
      preds.push_back(bb.get());
    }
  }
  return preds;
}

Argument* Function::addArg(const Type* type, std::string name) {
  args_.push_back(std::make_unique<Argument>(
      type, std::move(name), this, static_cast<unsigned>(args_.size())));
  return args_.back().get();
}

BasicBlock* Function::createBlock(std::string label) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(label), this));
  return blocks_.back().get();
}

Function* Module::getOrCreateFunction(const std::string& name,
                                      const cfront::FunctionType* type) {
  auto it = function_map_.find(name);
  if (it != function_map_.end()) return it->second;
  functions_.push_back(std::make_unique<Function>(name, type, this));
  Function* f = functions_.back().get();
  function_map_[name] = f;
  return f;
}

Function* Module::findFunction(const std::string& name) const {
  auto it = function_map_.find(name);
  return it == function_map_.end() ? nullptr : it->second;
}

GlobalVar* Module::getOrCreateGlobal(const std::string& name,
                                     const Type* value_type,
                                     SourceLocation loc) {
  auto it = global_map_.find(name);
  if (it != global_map_.end()) return it->second;
  globals_.push_back(std::make_unique<GlobalVar>(
      name, value_type, types_.pointerTo(value_type), loc));
  GlobalVar* g = globals_.back().get();
  global_map_[name] = g;
  return g;
}

GlobalVar* Module::findGlobal(const std::string& name) const {
  auto it = global_map_.find(name);
  return it == global_map_.end() ? nullptr : it->second;
}

ConstantInt* Module::constantInt(std::int64_t value, const Type* type) {
  const auto key = std::make_pair(value, type);
  auto it = int_constants_.find(key);
  if (it != int_constants_.end()) return it->second.get();
  auto owned = std::make_unique<ConstantInt>(value, type);
  ConstantInt* raw = owned.get();
  int_constants_[key] = std::move(owned);
  return raw;
}

ConstantFloat* Module::constantFloat(double value, const Type* type) {
  float_constants_.push_back(std::make_unique<ConstantFloat>(value, type));
  return float_constants_.back().get();
}

ConstantString* Module::constantString(std::string text) {
  string_constants_.push_back(std::make_unique<ConstantString>(
      std::move(text), types_.pointerTo(types_.charType())));
  return string_constants_.back().get();
}

Undef* Module::undef(const Type* type) {
  auto it = undefs_.find(type);
  if (it != undefs_.end()) return it->second.get();
  auto owned = std::make_unique<Undef>(type);
  Undef* raw = owned.get();
  undefs_[type] = std::move(owned);
  return raw;
}

}  // namespace safeflow::ir
