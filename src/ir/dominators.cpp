#include "ir/dominators.h"

#include <algorithm>
#include <cassert>

namespace safeflow::ir {

namespace {

/// Explicit graph over block indices; index n (== blocks.size()) is the
/// virtual root used for post-dominators.
struct Graph {
  std::vector<const BasicBlock*> blocks;
  std::map<const BasicBlock*, int> index;
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
  int root = 0;
};

Graph buildGraph(const Function& fn, bool post) {
  Graph g;
  for (const auto& bb : fn.blocks()) {
    g.index[bb.get()] = static_cast<int>(g.blocks.size());
    g.blocks.push_back(bb.get());
  }
  const int n = static_cast<int>(g.blocks.size());
  const int total = post ? n + 1 : n;  // +1 virtual exit
  g.succs.assign(total, {});
  g.preds.assign(total, {});

  auto addEdge = [&g](int from, int to) {
    g.succs[from].push_back(to);
    g.preds[to].push_back(from);
  };

  for (int i = 0; i < n; ++i) {
    const BasicBlock* bb = g.blocks[i];
    for (BasicBlock* s : bb->successors()) addEdge(i, g.index.at(s));
    if (post && bb->terminator() != nullptr &&
        bb->terminator()->opcode() == Opcode::kRet) {
      addEdge(i, n);  // ret -> virtual exit
    }
  }

  if (!post) {
    g.root = 0;  // entry block
    return g;
  }

  // Reverse the graph for post-dominance; root is the virtual exit.
  std::swap(g.succs, g.preds);
  g.root = n;

  // Blocks with no path to the exit (infinite loops) would be unreachable
  // in the reversed graph; attach them to the root so every block gets an
  // idom (conservative: nothing is control dependent on exits of an
  // infinite loop we cannot see).
  std::vector<bool> reachable(total, false);
  std::vector<int> stack{g.root};
  reachable[g.root] = true;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int s : g.succs[v]) {
      if (!reachable[s]) {
        reachable[s] = true;
        stack.push_back(s);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (!reachable[i]) {
      g.succs[g.root].push_back(i);
      g.preds[i].push_back(g.root);
      reachable[i] = true;
    }
  }
  return g;
}

}  // namespace

DominatorTree DominatorTree::compute(const Function& fn) {
  return computeImpl(fn, /*post=*/false);
}

DominatorTree DominatorTree::computePost(const Function& fn) {
  return computeImpl(fn, /*post=*/true);
}

DominatorTree DominatorTree::computeImpl(const Function& fn, bool post) {
  DominatorTree tree;
  if (fn.blocks().empty()) return tree;
  Graph g = buildGraph(fn, post);
  const int total = static_cast<int>(g.succs.size());

  // Reverse postorder from the root.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(total));
  std::vector<bool> visited(total, false);
  // Iterative DFS computing postorder.
  std::vector<std::pair<int, std::size_t>> stack{{g.root, 0}};
  visited[g.root] = true;
  while (!stack.empty()) {
    auto& [v, i] = stack.back();
    if (i < g.succs[v].size()) {
      const int s = g.succs[v][i++];
      if (!visited[s]) {
        visited[s] = true;
        stack.emplace_back(s, 0);
      }
    } else {
      order.push_back(v);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());  // now RPO
  std::vector<int> rpo_number(total, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rpo_number[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }

  // Cooper–Harvey–Kennedy iteration.
  std::vector<int> idom(total, -1);
  idom[g.root] = g.root;
  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_number[a] > rpo_number[b]) a = idom[a];
      while (rpo_number[b] > rpo_number[a]) b = idom[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const int v : order) {
      if (v == g.root) continue;
      int new_idom = -1;
      for (const int p : g.preds[v]) {
        if (idom[p] == -1) continue;
        new_idom = (new_idom == -1) ? p : intersect(p, new_idom);
      }
      if (new_idom != -1 && idom[v] != new_idom) {
        idom[v] = new_idom;
        changed = true;
      }
    }
  }

  const int n = static_cast<int>(g.blocks.size());
  for (int v = 0; v < n; ++v) {
    if (idom[v] == -1) continue;  // unreachable block
    const BasicBlock* block = g.blocks[static_cast<std::size_t>(v)];
    if (idom[v] == v || idom[v] >= n) {
      tree.idom_[block] = nullptr;  // root or virtual-exit parent
    } else {
      tree.idom_[block] = g.blocks[static_cast<std::size_t>(idom[v])];
    }
  }

  // Dominance frontiers (per Cytron et al.): for each join node, walk up
  // from each predecessor to the idom.
  for (int v = 0; v < total; ++v) {
    if (g.preds[v].size() < 2 || idom[v] == -1) continue;
    for (const int p : g.preds[v]) {
      if (idom[p] == -1) continue;
      int runner = p;
      while (runner != idom[v] && runner != g.root) {
        if (runner < n && v < n) {
          tree.frontiers_[g.blocks[static_cast<std::size_t>(runner)]].insert(
              g.blocks[static_cast<std::size_t>(v)]);
        }
        if (runner == idom[runner]) break;
        runner = idom[runner];
        if (runner == -1) break;
      }
    }
  }
  return tree;
}

const BasicBlock* DominatorTree::idom(const BasicBlock* bb) const {
  auto it = idom_.find(bb);
  return it == idom_.end() ? nullptr : it->second;
}

bool DominatorTree::dominates(const BasicBlock* a,
                              const BasicBlock* b) const {
  const BasicBlock* cur = b;
  while (cur != nullptr) {
    if (cur == a) return true;
    auto it = idom_.find(cur);
    if (it == idom_.end()) return false;
    cur = it->second;
  }
  return false;
}

std::vector<const BasicBlock*> DominatorTree::children(
    const BasicBlock* bb) const {
  std::vector<const BasicBlock*> out;
  for (const auto& [block, parent] : idom_) {
    if (parent == bb) out.push_back(block);
  }
  return out;
}

}  // namespace safeflow::ir
