#include "ir/printer.h"

#include <map>
#include <sstream>

namespace safeflow::ir {

namespace {

class Printer {
 public:
  std::string printFunction(const Function& fn) {
    std::ostringstream out;
    out << (fn.isDefined() ? "define " : "declare ")
        << fn.functionType()->returnType()->str() << " @" << fn.name()
        << "(";
    for (std::size_t i = 0; i < fn.args().size(); ++i) {
      if (i != 0) out << ", ";
      out << fn.args()[i]->type()->str() << " %" << fn.args()[i]->name();
    }
    out << ")";
    if (fn.annotations.is_shminit) out << " shminit";
    if (fn.annotations.is_monitor) out << " monitor";
    if (!fn.isDefined()) {
      out << "\n";
      return out.str();
    }
    out << " {\n";
    // Assign names to unnamed instructions.
    unsigned counter = 0;
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst : bb->instructions()) {
        names_[inst.get()] =
            inst->name().empty() ? "%t" + std::to_string(counter++)
                                 : "%" + inst->name();
      }
    }
    for (const auto& bb : fn.blocks()) {
      out << bb->label() << ":\n";
      for (const auto& inst : bb->instructions()) {
        out << "  " << printInst(*inst) << "\n";
      }
    }
    out << "}\n";
    return out.str();
  }

 private:
  std::string valueName(const Value* v) {
    switch (v->kind()) {
      case Value::Kind::kConstantInt:
        return std::to_string(static_cast<const ConstantInt*>(v)->value());
      case Value::Kind::kConstantFloat: {
        std::ostringstream ss;
        ss << static_cast<const ConstantFloat*>(v)->value();
        return ss.str();
      }
      case Value::Kind::kConstantString:
        return "\"" + static_cast<const ConstantString*>(v)->text() + "\"";
      case Value::Kind::kGlobalVar:
        return "@" + v->name();
      case Value::Kind::kArgument:
        return "%" + v->name();
      case Value::Kind::kUndef:
        return "undef";
      case Value::Kind::kFunction:
        return "@" + v->name();
      case Value::Kind::kInstruction: {
        auto it = names_.find(static_cast<const Instruction*>(v));
        return it == names_.end() ? "%?" : it->second;
      }
    }
    return "?";
  }

  std::string printInst(const Instruction& inst) {
    std::ostringstream out;
    const std::string self = names_[&inst];
    switch (inst.opcode()) {
      case Opcode::kAlloca:
        out << self << " = alloca " << inst.allocated_type->str();
        break;
      case Opcode::kLoad:
        out << self << " = load " << inst.type()->str() << ", "
            << valueName(inst.operand(0));
        break;
      case Opcode::kStore:
        out << "store " << valueName(inst.operand(0)) << ", "
            << valueName(inst.operand(1));
        break;
      case Opcode::kBinOp: {
        static constexpr const char* kNames[] = {
            "add", "sub", "mul", "div", "rem",
            "and", "or",  "xor", "shl", "shr"};
        out << self << " = " << kNames[static_cast<int>(inst.bin_op)] << " "
            << valueName(inst.operand(0)) << ", "
            << valueName(inst.operand(1));
        break;
      }
      case Opcode::kUnOp: {
        static constexpr const char* kNames[] = {"neg", "not", "bitnot"};
        out << self << " = " << kNames[static_cast<int>(inst.un_op)] << " "
            << valueName(inst.operand(0));
        break;
      }
      case Opcode::kCmp: {
        static constexpr const char* kNames[] = {"lt", "gt", "le",
                                                 "ge", "eq", "ne"};
        out << self << " = cmp " << kNames[static_cast<int>(inst.cmp_op)]
            << " " << valueName(inst.operand(0)) << ", "
            << valueName(inst.operand(1));
        break;
      }
      case Opcode::kCast:
        out << self << " = cast " << valueName(inst.operand(0)) << " to "
            << inst.type()->str();
        break;
      case Opcode::kFieldAddr:
        out << self << " = fieldaddr " << valueName(inst.operand(0)) << ", #"
            << inst.field_index;
        break;
      case Opcode::kIndexAddr:
        out << self << " = indexaddr " << valueName(inst.operand(0)) << ", "
            << valueName(inst.operand(1));
        break;
      case Opcode::kCall: {
        if (!inst.type()->isVoid()) out << self << " = ";
        out << "call ";
        std::size_t first_arg = 0;
        if (inst.direct_callee != nullptr) {
          out << "@" << inst.direct_callee->name();
        } else {
          out << valueName(inst.operand(0)) << " (indirect)";
          first_arg = 1;
        }
        out << "(";
        for (std::size_t i = first_arg; i < inst.numOperands(); ++i) {
          if (i != first_arg) out << ", ";
          out << valueName(inst.operand(i));
        }
        out << ")";
        break;
      }
      case Opcode::kPhi:
        out << self << " = phi";
        for (std::size_t i = 0; i < inst.numOperands(); ++i) {
          out << (i == 0 ? " " : ", ") << "["
              << valueName(inst.operand(i)) << ", "
              << (i < inst.block_refs.size() ? inst.block_refs[i]->label()
                                             : "?")
              << "]";
        }
        break;
      case Opcode::kBr:
        out << "br " << inst.block_refs[0]->label();
        break;
      case Opcode::kCondBr:
        out << "condbr " << valueName(inst.operand(0)) << ", "
            << inst.block_refs[0]->label() << ", "
            << inst.block_refs[1]->label();
        break;
      case Opcode::kRet:
        out << "ret";
        if (inst.numOperands() > 0) out << " " << valueName(inst.operand(0));
        break;
    }
    return out.str();
  }

  std::map<const Instruction*, std::string> names_;
};

}  // namespace

std::string print(const Function& fn) {
  Printer p;
  return p.printFunction(fn);
}

std::string print(const Module& module) {
  std::ostringstream out;
  for (const auto& g : module.globals()) {
    out << "@" << g->name() << " : " << g->valueType()->str() << "\n";
  }
  out << "\n";
  for (const auto& fn : module.functions()) {
    out << print(*fn) << "\n";
  }
  return out.str();
}

}  // namespace safeflow::ir
