// mem2reg: promotes scalar, non-address-taken allocas to SSA values with
// Phi nodes placed on dominance frontiers (Cytron et al.), matching the
// paper's use of LLVM SSA form as the analysis substrate.
#pragma once

#include "ir/ir.h"

namespace safeflow::ir {

struct SsaStats {
  std::size_t promoted_allocas = 0;
  std::size_t phis_inserted = 0;
  std::size_t loads_removed = 0;
  std::size_t stores_removed = 0;
};

/// Runs mem2reg on one function. Allocas remain for aggregates and for
/// locals whose address escapes (operand of anything but load/store-ptr).
SsaStats promoteToSsa(Function& fn, Module& module);

/// Convenience: promotes every defined function in the module.
SsaStats promoteModuleToSsa(Module& module);

/// Verifies SSA well-formedness: every instruction operand is defined in a
/// block that dominates the use (phi uses checked at the incoming edge).
/// Returns an empty string when valid, else a description of the first
/// violation.
[[nodiscard]] std::string verifySsa(const Function& fn);

}  // namespace safeflow::ir
