// Textual IR dump for debugging and golden tests.
#pragma once

#include <string>

#include "ir/ir.h"

namespace safeflow::ir {

[[nodiscard]] std::string print(const Module& module);
[[nodiscard]] std::string print(const Function& fn);

}  // namespace safeflow::ir
