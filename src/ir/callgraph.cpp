#include "ir/callgraph.h"

#include <algorithm>
#include <cassert>

#include "support/metrics.h"

namespace safeflow::ir {

namespace {
constexpr std::string_view kFnAddrPrefix = "@fnaddr.";
}

CallGraph::CallGraph(const Module& module) : module_(module) {
  const support::ScopedTimer timer("phase.callgraph");
  // Address-taken functions (represented by @fnaddr.<name> globals created
  // during lowering).
  for (const auto& g : module.globals()) {
    const std::string& name = g->name();
    if (name.rfind(kFnAddrPrefix, 0) == 0) {
      if (const Function* f =
              module.findFunction(name.substr(kFnAddrPrefix.size()))) {
        address_taken_.push_back(f);
      }
    }
  }

  for (const auto& fn : module.functions()) {
    callees_[fn.get()];  // ensure node exists
    if (!fn->isDefined()) continue;
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != Opcode::kCall) continue;
        for (const Function* target : targets(*inst)) {
          callees_[fn.get()].insert(target);
          callers_[target].insert(fn.get());
        }
      }
    }
  }
  computeSccs();
  std::size_t edges = 0;
  for (const auto& [fn, cs] : callees_) edges += cs.size();
  SAFEFLOW_COUNT_N("callgraph.edges", edges);
  SAFEFLOW_COUNT_N("callgraph.address_taken", address_taken_.size());
  SAFEFLOW_GAUGE("callgraph.sccs", sccs_.size());
  SAFEFLOW_GAUGE("callgraph.recursive_functions", recursive_.size());
}

std::vector<const Function*> CallGraph::targets(
    const Instruction& call) const {
  assert(call.opcode() == Opcode::kCall);
  if (call.direct_callee != nullptr) return {call.direct_callee};
  return address_taken_;  // conservative indirect resolution
}

const std::set<const Function*>& CallGraph::callees(
    const Function* fn) const {
  auto it = callees_.find(fn);
  return it == callees_.end() ? empty_ : it->second;
}

const std::set<const Function*>& CallGraph::callers(
    const Function* fn) const {
  auto it = callers_.find(fn);
  return it == callers_.end() ? empty_ : it->second;
}

void CallGraph::computeSccs() {
  // Tarjan's algorithm, iterative to survive deep graphs.
  std::map<const Function*, int> index;
  std::map<const Function*, int> lowlink;
  std::map<const Function*, bool> on_stack;
  std::vector<const Function*> stack;
  int next_index = 0;

  struct Frame {
    const Function* fn;
    std::vector<const Function*> succs;
    std::size_t next_succ = 0;
  };

  auto strongConnect = [&](const Function* root) {
    std::vector<Frame> frames;
    auto open = [&](const Function* fn) {
      index[fn] = lowlink[fn] = next_index++;
      stack.push_back(fn);
      on_stack[fn] = true;
      const auto& succ_set = callees(fn);
      frames.push_back(
          Frame{fn, {succ_set.begin(), succ_set.end()}, 0});
    };
    open(root);
    while (!frames.empty()) {
      Frame& top = frames.back();
      if (top.next_succ < top.succs.size()) {
        const Function* succ = top.succs[top.next_succ++];
        if (!index.contains(succ)) {
          open(succ);
        } else if (on_stack[succ]) {
          lowlink[top.fn] = std::min(lowlink[top.fn], index[succ]);
        }
        continue;
      }
      // Close this frame.
      if (lowlink[top.fn] == index[top.fn]) {
        std::vector<const Function*> scc;
        while (true) {
          const Function* v = stack.back();
          stack.pop_back();
          on_stack[v] = false;
          scc.push_back(v);
          if (v == top.fn) break;
        }
        if (scc.size() > 1) {
          for (const Function* f : scc) recursive_.insert(f);
        } else if (callees(scc[0]).contains(scc[0])) {
          recursive_.insert(scc[0]);  // self-recursion
        }
        sccs_.push_back(std::move(scc));
      }
      const Function* closed = top.fn;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().fn] =
            std::min(lowlink[frames.back().fn], lowlink[closed]);
      }
    }
  };

  for (const auto& fn : module_.functions()) {
    if (!index.contains(fn.get())) strongConnect(fn.get());
  }
  // Tarjan emits SCCs in reverse topological order of the condensation,
  // which for a call graph is exactly callee-before-caller (bottom-up).
}

std::vector<std::vector<const Function*>> CallGraph::sccsTopDown() const {
  std::vector<std::vector<const Function*>> out(sccs_.rbegin(),
                                                sccs_.rend());
  return out;
}

bool CallGraph::isRecursive(const Function* fn) const {
  return recursive_.contains(fn);
}

}  // namespace safeflow::ir
