#include "cfront/types.h"

#include <algorithm>
#include <cassert>

namespace safeflow::cfront {

std::string IntegerType::str() const {
  std::string base;
  switch (bytes_) {
    case 1: base = "char"; break;
    case 2: base = "short"; break;
    case 4: base = "int"; break;
    case 8: base = "long"; break;
    default: base = "int" + std::to_string(bytes_ * 8); break;
  }
  return signed_ ? base : "unsigned " + base;
}

std::string FunctionType::str() const {
  std::string s = ret_->str() + " (";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i != 0) s += ", ";
    s += params_[i]->str();
  }
  if (variadic_) s += params_.empty() ? "..." : ", ...";
  s += ")";
  return s;
}

const StructField* StructType::findField(std::string_view name) const {
  for (const StructField& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

int StructType::fieldIndex(std::string_view name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void StructType::complete(std::vector<StructField> fields) {
  // A struct redefinition reaches here only on an already-diagnosed TU
  // (the parser checks isComplete() first); keep the first layout so
  // existing field offsets stay stable.
  if (complete_) return;
  std::uint64_t offset = 0;
  std::uint64_t align = 1;
  for (StructField& f : fields) {
    const std::uint64_t a = std::max<std::uint64_t>(1, f.type->alignment());
    if (is_union_) {
      f.offset = 0;
      offset = std::max(offset, f.type->size());
    } else {
      offset = (offset + a - 1) / a * a;
      f.offset = offset;
      offset += f.type->size();
    }
    align = std::max(align, a);
  }
  size_ = (offset + align - 1) / align * align;
  align_ = align;
  fields_ = std::move(fields);
  complete_ = true;
}

TypeContext::TypeContext() {
  auto add = [this](auto type_ptr) {
    auto* raw = type_ptr.get();
    owned_.push_back(std::move(type_ptr));
    return raw;
  };
  void_ = add(std::make_unique<VoidType>());
  char_ = add(std::make_unique<IntegerType>(1, true));
  short_ = add(std::make_unique<IntegerType>(2, true));
  int_ = add(std::make_unique<IntegerType>(4, true));
  long_ = add(std::make_unique<IntegerType>(8, true));
  uchar_ = add(std::make_unique<IntegerType>(1, false));
  ushort_ = add(std::make_unique<IntegerType>(2, false));
  uint_ = add(std::make_unique<IntegerType>(4, false));
  ulong_ = add(std::make_unique<IntegerType>(8, false));
  float_ = add(std::make_unique<FloatType>(4));
  double_ = add(std::make_unique<FloatType>(8));
}

const IntegerType* TypeContext::integerType(std::uint64_t bytes,
                                            bool is_signed) {
  switch (bytes) {
    case 1: return is_signed ? char_ : uchar_;
    case 2: return is_signed ? short_ : ushort_;
    case 4: return is_signed ? int_ : uint_;
    default: return is_signed ? long_ : ulong_;
  }
}

const PointerType* TypeContext::pointerTo(const Type* pointee) {
  auto it = pointers_.find(pointee);
  if (it != pointers_.end()) return it->second;
  auto owned = std::make_unique<PointerType>(pointee);
  const PointerType* raw = owned.get();
  owned_.push_back(std::move(owned));
  pointers_[pointee] = raw;
  return raw;
}

const ArrayType* TypeContext::arrayOf(const Type* element,
                                      std::uint64_t count) {
  const auto key = std::make_pair(element, count);
  auto it = arrays_.find(key);
  if (it != arrays_.end()) return it->second;
  auto owned = std::make_unique<ArrayType>(element, count);
  const ArrayType* raw = owned.get();
  owned_.push_back(std::move(owned));
  arrays_[key] = raw;
  return raw;
}

const FunctionType* TypeContext::functionType(
    const Type* ret, std::vector<const Type*> params, bool variadic) {
  for (const FunctionType* ft : function_types_) {
    if (ft->returnType() == ret && ft->params() == params &&
        ft->isVariadic() == variadic) {
      return ft;
    }
  }
  auto owned =
      std::make_unique<FunctionType>(ret, std::move(params), variadic);
  const FunctionType* raw = owned.get();
  owned_.push_back(std::move(owned));
  function_types_.push_back(raw);
  return raw;
}

StructType* TypeContext::getOrCreateStruct(const std::string& tag) {
  auto it = structs_.find(tag);
  if (it != structs_.end()) return it->second;
  auto owned = std::make_unique<StructType>(tag);
  StructType* raw = owned.get();
  owned_.push_back(std::move(owned));
  structs_[tag] = raw;
  return raw;
}

const StructType* TypeContext::findStruct(const std::string& tag) const {
  auto it = structs_.find(tag);
  return it == structs_.end() ? nullptr : it->second;
}

bool typesCompatible(const Type* to, const Type* from) {
  if (to == from) return true;
  if (to == nullptr || from == nullptr) return false;
  if (to->isArithmetic() && from->isArithmetic()) return true;
  if (to->isPointer() && from->isPointer()) {
    const Type* tp = static_cast<const PointerType*>(to)->pointee();
    const Type* fp = static_cast<const PointerType*>(from)->pointee();
    if (tp->isVoid() || fp->isVoid()) return true;
    if (tp == fp) return true;
    // char* may view any object representation.
    if (tp->isInteger() && tp->size() == 1) return true;
    return false;
  }
  // Array-to-pointer decay.
  if (to->isPointer() && from->isArray()) {
    const Type* tp = static_cast<const PointerType*>(to)->pointee();
    const Type* elem = static_cast<const ArrayType*>(from)->element();
    return tp == elem || tp->isVoid();
  }
  return false;
}

}  // namespace safeflow::cfront
