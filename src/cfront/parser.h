// Recursive-descent parser for the C subset, producing a typed AST.
// Declarator syntax covers pointers, arrays, and function-pointer
// parameters; typedefs are resolved during parsing. Enum constants are
// folded to integer literals. SafeFlow annotation tokens become either
// function entry annotations or AnnotationStmts.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cfront/ast.h"
#include "cfront/token.h"
#include "cfront/types.h"
#include "support/diagnostics.h"

namespace safeflow::cfront {

class Parser {
 public:
  Parser(std::vector<Token> tokens, TypeContext& types,
         support::DiagnosticEngine& diags);

  /// Parses the whole token stream into `tu`. Returns false when a fatal
  /// syntax error stopped the parse early.
  bool parseTranslationUnit(TranslationUnit& tu);

 private:
  // -- token cursor ---------------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokenKind k) const { return peek().is(k); }
  bool accept(TokenKind k);
  bool expect(TokenKind k, std::string_view context);
  void synchronizeToSemi();

  // -- scopes ---------------------------------------------------------------
  struct Scope {
    std::map<std::string, const ValueDecl*> values;
    std::map<std::string, std::int64_t> enum_constants;
  };
  void pushScope() { scopes_.emplace_back(); }
  void popScope() {
    // Unbalanced pops can happen during panic-mode recovery; popping an
    // empty stack would be UB.
    if (!scopes_.empty()) scopes_.pop_back();
  }
  void declareValue(const std::string& name, const ValueDecl* decl);
  [[nodiscard]] const ValueDecl* lookupValue(const std::string& name) const;
  [[nodiscard]] const std::int64_t* lookupEnumConstant(
      const std::string& name) const;

  // -- declarations ---------------------------------------------------------
  /// True when the token `ahead` positions away starts a type (keyword,
  /// typedef name, struct/enum).
  [[nodiscard]] bool startsTypeAt(std::size_t ahead) const;
  [[nodiscard]] bool startsType() const { return startsTypeAt(0); }
  /// Parses declaration specifiers: base type, typedef/extern/static flags.
  struct DeclSpec {
    const Type* base = nullptr;
    bool is_typedef = false;
    bool is_extern = false;
    bool is_static = false;
  };
  bool parseDeclSpec(DeclSpec& spec);
  /// Parses one declarator: pointers, name, arrays, function params.
  struct Declarator {
    const Type* type = nullptr;
    std::string name;
    SourceLocation loc;
    // Set when this declarator declared a function (param names captured).
    bool is_function = false;
    std::vector<std::unique_ptr<VarDecl>> params;
    bool variadic = false;
  };
  bool parseDeclarator(const Type* base, Declarator& out);
  const Type* parseStructSpecifier();
  const Type* parseEnumSpecifier();
  bool parseExternalDeclaration(TranslationUnit& tu,
                                std::vector<RawAnnotation>& pending);
  StmtPtr parseLocalDeclaration();

  // -- statements -----------------------------------------------------------
  StmtPtr parseStatement();
  StmtPtr parseCompound();

  /// Parses an initializer: a brace list (possibly nested) or an
  /// assignment expression. `type` is the declared type (for list typing).
  ExprPtr parseInitializer(const Type* type);

  // -- expressions (precedence climbing) -------------------------------------
  ExprPtr parseExpr();            // comma
  ExprPtr parseAssignment();
  ExprPtr parseConditional();
  ExprPtr parseBinary(int min_prec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  /// Parses `(type-name)` after '(' when it is a cast/sizeof type.
  const Type* parseTypeName();

  /// Folds an integer constant expression (array sizes, case labels);
  /// reports an error and returns 0 when not constant.
  std::int64_t evalConstExpr(const Expr* e, bool* ok = nullptr);

  // -- typing helpers --------------------------------------------------------
  const Type* decay(const Type* t);
  const Type* arithmeticResult(const Type* a, const Type* b);

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  TypeContext& types_;
  support::DiagnosticEngine& diags_;
  std::vector<Scope> scopes_;
  std::map<std::string, const Type*> typedefs_;
  TranslationUnit* tu_ = nullptr;
  bool fatal_ = false;
};

}  // namespace safeflow::cfront
