#include "cfront/ast.h"

namespace safeflow::cfront {

VarDecl* TranslationUnit::addGlobal(std::unique_ptr<VarDecl> var) {
  globals_.push_back(std::move(var));
  return globals_.back().get();
}

FunctionDecl* TranslationUnit::addFunction(
    std::unique_ptr<FunctionDecl> fn) {
  functions_.push_back(std::move(fn));
  return functions_.back().get();
}

const FunctionDecl* TranslationUnit::findFunction(
    std::string_view name) const {
  const FunctionDecl* found = nullptr;
  for (const auto& fn : functions_) {
    if (fn->name() == name) {
      // Prefer a definition over a forward declaration.
      if (fn->isDefined()) return fn.get();
      if (found == nullptr) found = fn.get();
    }
  }
  return found;
}

const VarDecl* TranslationUnit::findGlobal(std::string_view name) const {
  for (const auto& g : globals_) {
    if (g->name() == name) return g.get();
  }
  return nullptr;
}

}  // namespace safeflow::cfront
