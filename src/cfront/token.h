// Token definitions for the C-subset front end. The lexer turns SafeFlow
// annotation comments (block comments whose body begins with "SafeFlow
// Annotation") into kAnnotation tokens carrying the annotation text; all
// other comments are skipped.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.h"

namespace safeflow::cfront {

enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kCharLiteral,
  kStringLiteral,
  kAnnotation,  // SafeFlow annotation comment; text() is the body

  // Keywords.
  kKwVoid, kKwChar, kKwShort, kKwInt, kKwLong, kKwFloat, kKwDouble,
  kKwSigned, kKwUnsigned, kKwStruct, kKwUnion, kKwEnum, kKwTypedef,
  kKwExtern, kKwStatic, kKwConst, kKwVolatile, kKwIf, kKwElse, kKwWhile,
  kKwDo, kKwFor, kKwReturn, kKwBreak, kKwContinue, kKwSwitch, kKwCase,
  kKwDefault, kKwSizeof, kKwGoto,

  // Punctuation and operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kDot, kArrow, kEllipsis,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kPlusPlus, kMinusMinus,
  kAmp, kPipe, kCaret, kTilde, kShl, kShr,
  kAmpAmp, kPipePipe, kBang,
  kLess, kGreater, kLessEq, kGreaterEq, kEqEq, kBangEq,
  kAssign, kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign,
  kPercentAssign, kAmpAssign, kPipeAssign, kCaretAssign, kShlAssign,
  kShrAssign,
  kQuestion, kColon,
  kHash,  // only meaningful to the preprocessor
};

[[nodiscard]] std::string_view tokenKindName(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // identifier spelling, literal spelling, annotation body
  support::SourceLocation location;
  bool at_line_start = false;  // for preprocessor directive recognition
  // Macro names this token must not be re-expanded as ("blue paint"),
  // preventing infinite recursion during preprocessing.
  std::vector<std::string> no_expand;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool isIdent(std::string_view name) const {
    return kind == TokenKind::kIdentifier && text == name;
  }
};

/// Maps an identifier spelling to a keyword kind, or kIdentifier.
[[nodiscard]] TokenKind classifyKeyword(std::string_view spelling);

}  // namespace safeflow::cfront
