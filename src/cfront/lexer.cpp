#include "cfront/lexer.h"

#include <array>
#include <cctype>
#include <utility>

#include "support/string_utils.h"

namespace safeflow::cfront {

namespace {

constexpr std::array<std::pair<std::string_view, TokenKind>, 30> kKeywords{{
    {"void", TokenKind::kKwVoid},
    {"char", TokenKind::kKwChar},
    {"short", TokenKind::kKwShort},
    {"int", TokenKind::kKwInt},
    {"long", TokenKind::kKwLong},
    {"float", TokenKind::kKwFloat},
    {"double", TokenKind::kKwDouble},
    {"signed", TokenKind::kKwSigned},
    {"unsigned", TokenKind::kKwUnsigned},
    {"struct", TokenKind::kKwStruct},
    {"union", TokenKind::kKwUnion},
    {"enum", TokenKind::kKwEnum},
    {"typedef", TokenKind::kKwTypedef},
    {"extern", TokenKind::kKwExtern},
    {"static", TokenKind::kKwStatic},
    {"const", TokenKind::kKwConst},
    {"volatile", TokenKind::kKwVolatile},
    {"if", TokenKind::kKwIf},
    {"else", TokenKind::kKwElse},
    {"while", TokenKind::kKwWhile},
    {"do", TokenKind::kKwDo},
    {"for", TokenKind::kKwFor},
    {"return", TokenKind::kKwReturn},
    {"break", TokenKind::kKwBreak},
    {"continue", TokenKind::kKwContinue},
    {"switch", TokenKind::kKwSwitch},
    {"case", TokenKind::kKwCase},
    {"default", TokenKind::kKwDefault},
    {"sizeof", TokenKind::kKwSizeof},
    {"goto", TokenKind::kKwGoto},
}};

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

TokenKind classifyKeyword(std::string_view spelling) {
  for (const auto& [name, kind] : kKeywords) {
    if (name == spelling) return kind;
  }
  return TokenKind::kIdentifier;
}

std::string_view tokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEof: return "end of file";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kCharLiteral: return "char literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kAnnotation: return "SafeFlow annotation";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kColon: return "':'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kHash: return "'#'";
    default: return "token";
  }
}

Lexer::Lexer(support::FileId file, std::string_view buffer,
             support::DiagnosticEngine& diags)
    : file_(file), buffer_(buffer), diags_(diags) {}

char Lexer::peek(std::size_t ahead) const {
  return (pos_ + ahead < buffer_.size()) ? buffer_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = buffer_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
    at_line_start_ = true;
  } else {
    ++column_;
  }
  return c;
}

support::SourceLocation Lexer::here() const {
  return support::SourceLocation{file_, line_, column_};
}

Token Lexer::makeToken(TokenKind kind, support::SourceLocation loc,
                       std::string text) {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.location = loc;
  return t;
}

Token Lexer::next() {
  while (!atEnd()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const support::SourceLocation loc = here();
      advance();
      advance();
      Token annot;
      if (lexBlockComment(loc, annot)) return annot;
      continue;
    }
    break;
  }
  if (atEnd()) return makeToken(TokenKind::kEof, here());

  const support::SourceLocation loc = here();
  const bool line_start = at_line_start_;
  at_line_start_ = false;
  const char c = peek();

  Token tok;
  if (isIdentStart(c)) {
    tok = lexIdentifier(loc);
  } else if (std::isdigit(static_cast<unsigned char>(c)) ||
             (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    tok = lexNumber(loc);
  } else if (c == '\'') {
    tok = lexCharLiteral(loc);
  } else if (c == '"') {
    tok = lexStringLiteral(loc);
  } else {
    advance();
    const char n = peek();
    auto two = [&](char second, TokenKind k2, TokenKind k1) {
      if (n == second) {
        advance();
        return k2;
      }
      return k1;
    };
    TokenKind kind = TokenKind::kEof;
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case ';': kind = TokenKind::kSemi; break;
      case ',': kind = TokenKind::kComma; break;
      case '?': kind = TokenKind::kQuestion; break;
      case ':': kind = TokenKind::kColon; break;
      case '~': kind = TokenKind::kTilde; break;
      case '#': kind = TokenKind::kHash; break;
      case '.':
        if (n == '.' && peek(1) == '.') {
          advance();
          advance();
          kind = TokenKind::kEllipsis;
        } else {
          kind = TokenKind::kDot;
        }
        break;
      case '+':
        if (n == '+') {
          advance();
          kind = TokenKind::kPlusPlus;
        } else {
          kind = two('=', TokenKind::kPlusAssign, TokenKind::kPlus);
        }
        break;
      case '-':
        if (n == '-') {
          advance();
          kind = TokenKind::kMinusMinus;
        } else if (n == '>') {
          advance();
          kind = TokenKind::kArrow;
        } else {
          kind = two('=', TokenKind::kMinusAssign, TokenKind::kMinus);
        }
        break;
      case '*': kind = two('=', TokenKind::kStarAssign, TokenKind::kStar); break;
      case '/': kind = two('=', TokenKind::kSlashAssign, TokenKind::kSlash); break;
      case '%': kind = two('=', TokenKind::kPercentAssign, TokenKind::kPercent); break;
      case '^': kind = two('=', TokenKind::kCaretAssign, TokenKind::kCaret); break;
      case '!': kind = two('=', TokenKind::kBangEq, TokenKind::kBang); break;
      case '=': kind = two('=', TokenKind::kEqEq, TokenKind::kAssign); break;
      case '&':
        if (n == '&') {
          advance();
          kind = TokenKind::kAmpAmp;
        } else {
          kind = two('=', TokenKind::kAmpAssign, TokenKind::kAmp);
        }
        break;
      case '|':
        if (n == '|') {
          advance();
          kind = TokenKind::kPipePipe;
        } else {
          kind = two('=', TokenKind::kPipeAssign, TokenKind::kPipe);
        }
        break;
      case '<':
        if (n == '<') {
          advance();
          kind = (peek() == '=')
                     ? (advance(), TokenKind::kShlAssign)
                     : TokenKind::kShl;
        } else {
          kind = two('=', TokenKind::kLessEq, TokenKind::kLess);
        }
        break;
      case '>':
        if (n == '>') {
          advance();
          kind = (peek() == '=')
                     ? (advance(), TokenKind::kShrAssign)
                     : TokenKind::kShr;
        } else {
          kind = two('=', TokenKind::kGreaterEq, TokenKind::kGreater);
        }
        break;
      default:
        diags_.error(loc, "lex", "unexpected character '" +
                                     std::string(1, c) + "'");
        return next();
    }
    tok = makeToken(kind, loc);
  }
  tok.at_line_start = line_start;
  return tok;
}

Token Lexer::lexIdentifier(support::SourceLocation loc) {
  std::string text;
  while (!atEnd() && isIdentCont(peek())) text.push_back(advance());
  const TokenKind kind = classifyKeyword(text);
  return makeToken(kind, loc, kind == TokenKind::kIdentifier
                                  ? std::move(text)
                                  : std::string(text));
}

Token Lexer::lexNumber(support::SourceLocation loc) {
  std::string text;
  bool is_float = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    text.push_back(advance());
    text.push_back(advance());
    while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek()))) {
      text.push_back(advance());
    }
  } else {
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      text.push_back(advance());
    }
    if (peek() == '.') {
      is_float = true;
      text.push_back(advance());
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      is_float = true;
      text.push_back(advance());
      if (peek() == '+' || peek() == '-') text.push_back(advance());
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
    }
  }
  // Suffixes (u, l, f) are consumed but not distinguished further.
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L' ||
         peek() == 'f' || peek() == 'F') {
    if (peek() == 'f' || peek() == 'F') is_float = true;
    advance();
  }
  return makeToken(is_float ? TokenKind::kFloatLiteral
                            : TokenKind::kIntLiteral,
                   loc, std::move(text));
}

Token Lexer::lexCharLiteral(support::SourceLocation loc) {
  advance();  // opening quote
  std::string text;
  while (!atEnd() && peek() != '\'') {
    if (peek() == '\\') text.push_back(advance());
    if (!atEnd()) text.push_back(advance());
  }
  if (atEnd()) {
    diags_.error(loc, "lex", "unterminated character literal");
  } else {
    advance();  // closing quote
  }
  return makeToken(TokenKind::kCharLiteral, loc, std::move(text));
}

Token Lexer::lexStringLiteral(support::SourceLocation loc) {
  advance();  // opening quote
  std::string text;
  while (!atEnd() && peek() != '"') {
    if (peek() == '\\') text.push_back(advance());
    if (!atEnd()) text.push_back(advance());
  }
  if (atEnd()) {
    diags_.error(loc, "lex", "unterminated string literal");
  } else {
    advance();  // closing quote
  }
  return makeToken(TokenKind::kStringLiteral, loc, std::move(text));
}

bool Lexer::lexBlockComment(support::SourceLocation loc, Token& out) {
  std::string body;
  while (!atEnd()) {
    if (peek() == '*' && peek(1) == '/') {
      advance();
      advance();
      // Annotation comments begin (after any leading '*'s and spaces) with
      // the marker string used by the paper's examples.
      std::string_view view = support::trim(body);
      while (!view.empty() && view.front() == '*') {
        view.remove_prefix(1);
        view = support::trim(view);
      }
      constexpr std::string_view kMarker = "SafeFlow Annotation";
      if (support::startsWith(view, kMarker)) {
        std::string_view rest = view.substr(kMarker.size());
        // Strip a trailing "/**" artifact of the paper's closing style.
        while (!rest.empty() && (rest.back() == '*' || rest.back() == '/')) {
          rest.remove_suffix(1);
        }
        out = makeToken(TokenKind::kAnnotation, loc,
                        std::string(support::trim(rest)));
        return true;
      }
      return false;
    }
    body.push_back(advance());
  }
  diags_.error(loc, "lex", "unterminated block comment");
  return false;
}

}  // namespace safeflow::cfront
