// Convenience driver: preprocess + parse a set of C files into one
// TranslationUnit. Owns the SourceManager, TypeContext, and diagnostics so
// callers get a single object with stable lifetimes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cfront/ast.h"
#include "cfront/parser.h"
#include "cfront/preprocessor.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace safeflow::cfront {

class Frontend {
 public:
  explicit Frontend(std::vector<std::string> include_dirs = {});

  /// Defines an object-like macro for all subsequently parsed files.
  void predefine(std::string name, std::string value = "1");

  /// Parses a file from disk into the shared translation unit. Returns
  /// false on I/O, preprocess, or parse errors (diagnostics describe them).
  bool parseFile(const std::string& path);

  /// Parses an in-memory buffer (used heavily by tests).
  bool parseBuffer(std::string name, std::string text);

  [[nodiscard]] const TranslationUnit& unit() const { return *tu_; }
  [[nodiscard]] TypeContext& types() { return types_; }
  [[nodiscard]] const support::SourceManager& sources() const { return sm_; }
  [[nodiscard]] support::SourceManager& sources() { return sm_; }
  [[nodiscard]] const support::DiagnosticEngine& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] support::DiagnosticEngine& diagnostics() { return diags_; }

 private:
  bool parseTokens(std::vector<Token> tokens);

  support::SourceManager sm_;
  support::DiagnosticEngine diags_;
  TypeContext types_;
  std::unique_ptr<TranslationUnit> tu_;
  std::vector<std::string> include_dirs_;
  std::vector<std::pair<std::string, std::string>> predefines_;
};

}  // namespace safeflow::cfront
