// Type system for the C subset. Types are immutable, uniqued, and owned by
// a TypeContext; code passes `const Type*` freely. Layout (sizes, field
// offsets) follows a conventional LP64 target: char=1, short=2, int=4,
// long=8, float=4, double=8, pointers=8.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace safeflow::cfront {

class TypeContext;

class Type {
 public:
  enum class Kind {
    kVoid,
    kInteger,
    kFloat,
    kPointer,
    kArray,
    kStruct,
    kFunction,
  };

  virtual ~Type() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isVoid() const { return kind_ == Kind::kVoid; }
  [[nodiscard]] bool isInteger() const { return kind_ == Kind::kInteger; }
  [[nodiscard]] bool isFloat() const { return kind_ == Kind::kFloat; }
  [[nodiscard]] bool isPointer() const { return kind_ == Kind::kPointer; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool isStruct() const { return kind_ == Kind::kStruct; }
  [[nodiscard]] bool isFunction() const { return kind_ == Kind::kFunction; }
  [[nodiscard]] bool isArithmetic() const {
    return isInteger() || isFloat();
  }
  [[nodiscard]] bool isScalar() const {
    return isArithmetic() || isPointer();
  }

  /// Size in bytes; 0 for void and function types.
  [[nodiscard]] virtual std::uint64_t size() const = 0;
  [[nodiscard]] virtual std::uint64_t alignment() const { return size(); }
  [[nodiscard]] virtual std::string str() const = 0;

 protected:
  explicit Type(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

class VoidType final : public Type {
 public:
  VoidType() : Type(Kind::kVoid) {}
  [[nodiscard]] std::uint64_t size() const override { return 0; }
  [[nodiscard]] std::uint64_t alignment() const override { return 1; }
  [[nodiscard]] std::string str() const override { return "void"; }
};

class IntegerType final : public Type {
 public:
  IntegerType(std::uint64_t bytes, bool is_signed)
      : Type(Kind::kInteger), bytes_(bytes), signed_(is_signed) {}
  [[nodiscard]] std::uint64_t size() const override { return bytes_; }
  [[nodiscard]] bool isSigned() const { return signed_; }
  [[nodiscard]] std::string str() const override;

 private:
  std::uint64_t bytes_;
  bool signed_;
};

class FloatType final : public Type {
 public:
  explicit FloatType(std::uint64_t bytes)
      : Type(Kind::kFloat), bytes_(bytes) {}
  [[nodiscard]] std::uint64_t size() const override { return bytes_; }
  [[nodiscard]] std::string str() const override {
    return bytes_ == 4 ? "float" : "double";
  }

 private:
  std::uint64_t bytes_;
};

class PointerType final : public Type {
 public:
  explicit PointerType(const Type* pointee)
      : Type(Kind::kPointer), pointee_(pointee) {}
  [[nodiscard]] const Type* pointee() const { return pointee_; }
  [[nodiscard]] std::uint64_t size() const override { return 8; }
  [[nodiscard]] std::string str() const override {
    return pointee_->str() + "*";
  }

 private:
  const Type* pointee_;
};

class ArrayType final : public Type {
 public:
  ArrayType(const Type* element, std::uint64_t count)
      : Type(Kind::kArray), element_(element), count_(count) {}
  [[nodiscard]] const Type* element() const { return element_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t size() const override {
    return element_->size() * count_;
  }
  [[nodiscard]] std::uint64_t alignment() const override {
    return element_->alignment();
  }
  [[nodiscard]] std::string str() const override {
    return element_->str() + "[" + std::to_string(count_) + "]";
  }

 private:
  const Type* element_;
  std::uint64_t count_;
};

struct StructField {
  std::string name;
  const Type* type = nullptr;
  std::uint64_t offset = 0;
};

/// Struct types are created by name first (to allow self-referential
/// pointers) and completed once their fields are parsed.
class StructType final : public Type {
 public:
  explicit StructType(std::string name)
      : Type(Kind::kStruct), name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool isComplete() const { return complete_; }
  [[nodiscard]] const std::vector<StructField>& fields() const {
    return fields_;
  }
  [[nodiscard]] const StructField* findField(std::string_view name) const;
  /// Index of a field by name, or -1.
  [[nodiscard]] int fieldIndex(std::string_view name) const;

  /// Unions share the struct representation but lay every member at
  /// offset 0; the points-to layer models their members as overlapping
  /// cells (Miné-style) instead of giving up.
  [[nodiscard]] bool isUnion() const { return is_union_; }
  void markUnion() { is_union_ = true; }

  /// Lays out fields with natural alignment and marks the type complete.
  /// Union members all get offset 0 and the size is the widest member.
  void complete(std::vector<StructField> fields);

  [[nodiscard]] std::uint64_t size() const override { return size_; }
  [[nodiscard]] std::uint64_t alignment() const override { return align_; }
  [[nodiscard]] std::string str() const override {
    return "struct " + name_;
  }

 private:
  std::string name_;
  std::vector<StructField> fields_;
  std::uint64_t size_ = 0;
  std::uint64_t align_ = 1;
  bool complete_ = false;
  bool is_union_ = false;
};

class FunctionType final : public Type {
 public:
  FunctionType(const Type* ret, std::vector<const Type*> params,
               bool variadic)
      : Type(Kind::kFunction),
        ret_(ret),
        params_(std::move(params)),
        variadic_(variadic) {}

  [[nodiscard]] const Type* returnType() const { return ret_; }
  [[nodiscard]] const std::vector<const Type*>& params() const {
    return params_;
  }
  [[nodiscard]] bool isVariadic() const { return variadic_; }
  [[nodiscard]] std::uint64_t size() const override { return 0; }
  [[nodiscard]] std::uint64_t alignment() const override { return 1; }
  [[nodiscard]] std::string str() const override;

 private:
  const Type* ret_;
  std::vector<const Type*> params_;
  bool variadic_;
};

/// Owns and uniques all types for one translation unit set.
class TypeContext {
 public:
  TypeContext();
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;

  [[nodiscard]] const VoidType* voidType() const { return void_; }
  [[nodiscard]] const IntegerType* charType() const { return char_; }
  [[nodiscard]] const IntegerType* shortType() const { return short_; }
  [[nodiscard]] const IntegerType* intType() const { return int_; }
  [[nodiscard]] const IntegerType* longType() const { return long_; }
  [[nodiscard]] const IntegerType* ucharType() const { return uchar_; }
  [[nodiscard]] const IntegerType* ushortType() const { return ushort_; }
  [[nodiscard]] const IntegerType* uintType() const { return uint_; }
  [[nodiscard]] const IntegerType* ulongType() const { return ulong_; }
  [[nodiscard]] const FloatType* floatType() const { return float_; }
  [[nodiscard]] const FloatType* doubleType() const { return double_; }

  const IntegerType* integerType(std::uint64_t bytes, bool is_signed);
  const PointerType* pointerTo(const Type* pointee);
  const ArrayType* arrayOf(const Type* element, std::uint64_t count);
  const FunctionType* functionType(const Type* ret,
                                   std::vector<const Type*> params,
                                   bool variadic);

  /// Returns the struct with this tag, creating an incomplete one if new.
  StructType* getOrCreateStruct(const std::string& tag);
  [[nodiscard]] const StructType* findStruct(const std::string& tag) const;

 private:
  std::vector<std::unique_ptr<Type>> owned_;
  const VoidType* void_;
  const IntegerType* char_;
  const IntegerType* short_;
  const IntegerType* int_;
  const IntegerType* long_;
  const IntegerType* uchar_;
  const IntegerType* ushort_;
  const IntegerType* uint_;
  const IntegerType* ulong_;
  const FloatType* float_;
  const FloatType* double_;
  std::map<const Type*, const PointerType*> pointers_;
  std::map<std::pair<const Type*, std::uint64_t>, const ArrayType*> arrays_;
  std::map<std::string, StructType*> structs_;
  std::vector<const FunctionType*> function_types_;
};

/// True when a value of `from` may be assigned/cast to `to` without the
/// paper's P3 "incompatible cast" restriction firing (same type, both
/// arithmetic, pointer to same pointee, or either side void*).
[[nodiscard]] bool typesCompatible(const Type* to, const Type* from);

}  // namespace safeflow::cfront
