// Token-level mini preprocessor. Supports the directive subset used by
// embedded control code bases:
//   #include "file"      (relative to the including file, then -I dirs)
//   #define NAME ...     (object-like)
//   #define NAME(a,b) .. (function-like, no # or ## operators)
//   #undef NAME
//   #ifdef / #ifndef / #else / #endif
//   #if 0 / #if 1 / #if defined(X) / #if !defined(X)
//   #pragma once
// Backslash line continuations inside directives are not supported; the
// corpora do not use them.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cfront/lexer.h"
#include "cfront/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace safeflow::cfront {

class Preprocessor {
 public:
  Preprocessor(support::SourceManager& sm, support::DiagnosticEngine& diags,
               std::vector<std::string> include_dirs = {});

  /// Defines an object-like macro before processing (like -DNAME=value).
  void predefine(std::string name, std::string value);

  /// Fully preprocesses the file, returning the expanded token stream
  /// terminated by a single kEof token.
  std::vector<Token> run(support::FileId root);

 private:
  struct Macro {
    bool function_like = false;
    std::vector<std::string> params;
    std::vector<Token> body;
  };

  struct Frame {
    Lexer lexer;
    std::string directory;  // for relative #include resolution
    // Tokens pushed back while this frame was on top; consumed before the
    // frame's lexer, and *after* any frames stacked above (so an #include
    // splices its file before the rest of the including line's successors).
    std::vector<Token> pushback;
  };

  // Raw token stream with pushback local to the top frame.
  Token rawNext();
  void pushBack(Token t);

  void handleDirective(const Token& hash);
  void handleInclude(std::uint32_t line);
  void handleDefine(std::uint32_t line);
  void handleIf(std::uint32_t line, bool is_ifdef, bool negate);
  void skipToEndOfLine(std::uint32_t line);
  /// Reads remaining raw tokens on `line` (same file as top frame).
  std::vector<Token> readRestOfLine(std::uint32_t line);

  /// If `tok` names a macro not painted on the token, expands it by pushing
  /// the substituted (painted) tokens back onto the stream and returns
  /// true; the main loop then rescans them naturally.
  bool maybeExpand(const Token& tok);

  [[nodiscard]] bool active() const;

  support::SourceManager& sm_;
  support::DiagnosticEngine& diags_;
  std::vector<std::string> include_dirs_;
  std::map<std::string, Macro> macros_;
  std::set<std::string> pragma_once_files_;
  std::vector<Frame> frames_;
  // Conditional stack: each entry is (this branch active, any branch taken).
  std::vector<std::pair<bool, bool>> conditionals_;
};

}  // namespace safeflow::cfront
