#include "cfront/parser.h"

#include <cassert>
#include <cstdlib>

namespace safeflow::cfront {

namespace {

/// Binary operator precedence for precedence climbing; higher binds tighter.
int binaryPrecedence(TokenKind k) {
  switch (k) {
    case TokenKind::kStar:
    case TokenKind::kSlash:
    case TokenKind::kPercent:
      return 10;
    case TokenKind::kPlus:
    case TokenKind::kMinus:
      return 9;
    case TokenKind::kShl:
    case TokenKind::kShr:
      return 8;
    case TokenKind::kLess:
    case TokenKind::kGreater:
    case TokenKind::kLessEq:
    case TokenKind::kGreaterEq:
      return 7;
    case TokenKind::kEqEq:
    case TokenKind::kBangEq:
      return 6;
    case TokenKind::kAmp:
      return 5;
    case TokenKind::kCaret:
      return 4;
    case TokenKind::kPipe:
      return 3;
    case TokenKind::kAmpAmp:
      return 2;
    case TokenKind::kPipePipe:
      return 1;
    default:
      return -1;
  }
}

std::optional<BinaryOp> binaryOpFor(TokenKind k) {
  switch (k) {
    case TokenKind::kStar: return BinaryOp::kMul;
    case TokenKind::kSlash: return BinaryOp::kDiv;
    case TokenKind::kPercent: return BinaryOp::kRem;
    case TokenKind::kPlus: return BinaryOp::kAdd;
    case TokenKind::kMinus: return BinaryOp::kSub;
    case TokenKind::kShl: return BinaryOp::kShl;
    case TokenKind::kShr: return BinaryOp::kShr;
    case TokenKind::kLess: return BinaryOp::kLt;
    case TokenKind::kGreater: return BinaryOp::kGt;
    case TokenKind::kLessEq: return BinaryOp::kLe;
    case TokenKind::kGreaterEq: return BinaryOp::kGe;
    case TokenKind::kEqEq: return BinaryOp::kEq;
    case TokenKind::kBangEq: return BinaryOp::kNe;
    case TokenKind::kAmp: return BinaryOp::kBitAnd;
    case TokenKind::kCaret: return BinaryOp::kBitXor;
    case TokenKind::kPipe: return BinaryOp::kBitOr;
    case TokenKind::kAmpAmp: return BinaryOp::kLogAnd;
    case TokenKind::kPipePipe: return BinaryOp::kLogOr;
    // A token kind with a binary precedence but no mapping here is a
    // parser-table bug; report it instead of asserting so release builds
    // degrade to a diagnostic rather than UB.
    default: return std::nullopt;
  }
}

std::optional<BinaryOp> compoundOpFor(TokenKind k) {
  switch (k) {
    case TokenKind::kPlusAssign: return BinaryOp::kAdd;
    case TokenKind::kMinusAssign: return BinaryOp::kSub;
    case TokenKind::kStarAssign: return BinaryOp::kMul;
    case TokenKind::kSlashAssign: return BinaryOp::kDiv;
    case TokenKind::kPercentAssign: return BinaryOp::kRem;
    case TokenKind::kAmpAssign: return BinaryOp::kBitAnd;
    case TokenKind::kPipeAssign: return BinaryOp::kBitOr;
    case TokenKind::kCaretAssign: return BinaryOp::kBitXor;
    case TokenKind::kShlAssign: return BinaryOp::kShl;
    case TokenKind::kShrAssign: return BinaryOp::kShr;
    default: return std::nullopt;
  }
}

std::int64_t parseIntText(const std::string& text) {
  return static_cast<std::int64_t>(std::strtoll(text.c_str(), nullptr, 0));
}

std::int64_t charLiteralValue(const std::string& text) {
  if (text.empty()) return 0;
  if (text[0] != '\\') return static_cast<unsigned char>(text[0]);
  if (text.size() < 2) return 0;
  switch (text[1]) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case '0': return 0;
    case '\\': return '\\';
    case '\'': return '\'';
    case '"': return '"';
    default: return static_cast<unsigned char>(text[1]);
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, TypeContext& types,
               support::DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), types_(types), diags_(diags) {
  // peek()/advance() rely on a trailing EOF sentinel; repair the stream
  // rather than asserting so a truncated token vector (e.g. from a
  // mutated/fuzzed input path) cannot index out of bounds.
  if (tokens_.empty() || !tokens_.back().is(TokenKind::kEof)) {
    tokens_.push_back(Token{});  // default Token is an EOF token
  }
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokenKind k) {
  if (check(k)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expect(TokenKind k, std::string_view context) {
  if (accept(k)) return true;
  diags_.error(peek().location, "parse",
               "expected " + std::string(tokenKindName(k)) + " " +
                   std::string(context) + ", found '" + peek().text + "' (" +
                   std::string(tokenKindName(peek().kind)) + ")");
  return false;
}

void Parser::synchronizeToSemi() {
  int depth = 0;
  while (!check(TokenKind::kEof)) {
    if (check(TokenKind::kLBrace)) {
      ++depth;
    } else if (check(TokenKind::kRBrace)) {
      // A close brace at depth 0 belongs to an enclosing block; leave it
      // for the caller. One that balances a brace we skipped most likely
      // ends the bad definition's body — resume right after it so the
      // declarations that follow still parse.
      if (depth == 0) return;
      --depth;
      advance();
      if (depth == 0) return;
      continue;
    } else if (check(TokenKind::kSemi) && depth == 0) {
      advance();
      return;
    }
    advance();
  }
}

void Parser::declareValue(const std::string& name, const ValueDecl* decl) {
  if (scopes_.empty()) scopes_.emplace_back();  // error recovery may have
                                                // unwound the file scope
  scopes_.back().values[name] = decl;
}

const ValueDecl* Parser::lookupValue(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->values.find(name);
    if (found != it->values.end()) return found->second;
  }
  return nullptr;
}

const std::int64_t* Parser::lookupEnumConstant(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->enum_constants.find(name);
    if (found != it->enum_constants.end()) return &found->second;
  }
  return nullptr;
}

bool Parser::startsTypeAt(std::size_t ahead) const {
  switch (peek(ahead).kind) {
    case TokenKind::kKwVoid:
    case TokenKind::kKwChar:
    case TokenKind::kKwShort:
    case TokenKind::kKwInt:
    case TokenKind::kKwLong:
    case TokenKind::kKwFloat:
    case TokenKind::kKwDouble:
    case TokenKind::kKwSigned:
    case TokenKind::kKwUnsigned:
    case TokenKind::kKwStruct:
    case TokenKind::kKwUnion:
    case TokenKind::kKwEnum:
    case TokenKind::kKwConst:
    case TokenKind::kKwVolatile:
    case TokenKind::kKwTypedef:
    case TokenKind::kKwExtern:
    case TokenKind::kKwStatic:
      return true;
    case TokenKind::kIdentifier:
      return typedefs_.contains(peek(ahead).text);
    default:
      return false;
  }
}

bool Parser::parseDeclSpec(DeclSpec& spec) {
  bool saw_unsigned = false;
  bool saw_signed = false;
  int long_count = 0;
  bool saw_short = false;
  const Type* base = nullptr;

  while (true) {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kKwTypedef: spec.is_typedef = true; advance(); continue;
      case TokenKind::kKwExtern: spec.is_extern = true; advance(); continue;
      case TokenKind::kKwStatic: spec.is_static = true; advance(); continue;
      case TokenKind::kKwConst:
      case TokenKind::kKwVolatile:
        advance();  // qualifiers are accepted and ignored
        continue;
      case TokenKind::kKwVoid: base = types_.voidType(); advance(); continue;
      case TokenKind::kKwChar: base = types_.charType(); advance(); continue;
      case TokenKind::kKwShort: saw_short = true; advance(); continue;
      case TokenKind::kKwInt:
        if (base == nullptr) base = types_.intType();
        advance();
        continue;
      case TokenKind::kKwLong: ++long_count; advance(); continue;
      case TokenKind::kKwFloat: base = types_.floatType(); advance(); continue;
      case TokenKind::kKwDouble:
        base = types_.doubleType();
        advance();
        continue;
      case TokenKind::kKwSigned: saw_signed = true; advance(); continue;
      case TokenKind::kKwUnsigned: saw_unsigned = true; advance(); continue;
      case TokenKind::kKwStruct:
      case TokenKind::kKwUnion:
        base = parseStructSpecifier();
        continue;
      case TokenKind::kKwEnum:
        base = parseEnumSpecifier();
        continue;
      case TokenKind::kIdentifier: {
        if (base == nullptr && !saw_short && long_count == 0 &&
            !saw_signed && !saw_unsigned) {
          auto it = typedefs_.find(t.text);
          if (it != typedefs_.end()) {
            base = it->second;
            advance();
            continue;
          }
        }
        break;
      }
      default:
        break;
    }
    break;
  }

  if (saw_short) {
    base = types_.integerType(2, !saw_unsigned);
  } else if (long_count > 0) {
    if (base != nullptr && base->isFloat() && base->size() == 8) {
      // long double -> treated as double
    } else {
      base = types_.integerType(8, !saw_unsigned);
    }
  } else if (saw_unsigned || saw_signed) {
    const std::uint64_t bytes = (base != nullptr) ? base->size() : 4;
    base = types_.integerType(bytes == 0 ? 4 : bytes, !saw_unsigned);
  }

  if (base == nullptr) return false;
  spec.base = base;
  return true;
}

const Type* Parser::parseStructSpecifier() {
  const bool is_union = peek().is(TokenKind::kKwUnion);
  advance();  // struct / union
  std::string tag;
  if (check(TokenKind::kIdentifier)) tag = advance().text;
  static unsigned anon_counter = 0;
  if (tag.empty()) tag = "<anon" + std::to_string(anon_counter++) + ">";
  if (is_union) tag = "union " + tag;

  StructType* st = types_.getOrCreateStruct(tag);
  if (is_union) st->markUnion();
  if (accept(TokenKind::kLBrace)) {
    std::vector<StructField> fields;
    while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
      DeclSpec spec;
      if (!parseDeclSpec(spec)) {
        diags_.error(peek().location, "parse",
                     "expected field type in struct '" + tag + "'");
        synchronizeToSemi();
        continue;
      }
      // One or more declarators per field line.
      do {
        Declarator d;
        if (!parseDeclarator(spec.base, d)) break;
        fields.push_back(StructField{d.name, d.type, 0});
      } while (accept(TokenKind::kComma));
      expect(TokenKind::kSemi, "after struct field");
    }
    expect(TokenKind::kRBrace, "to close struct definition");
    if (!st->isComplete()) st->complete(std::move(fields));
  }
  return st;
}

const Type* Parser::parseEnumSpecifier() {
  advance();  // enum
  if (check(TokenKind::kIdentifier)) advance();  // tag, unused
  if (accept(TokenKind::kLBrace)) {
    std::int64_t next_value = 0;
    while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
      if (!check(TokenKind::kIdentifier)) {
        diags_.error(peek().location, "parse", "expected enumerator name");
        synchronizeToSemi();
        break;
      }
      const std::string name = advance().text;
      if (accept(TokenKind::kAssign)) {
        ExprPtr value = parseConditional();
        bool ok = true;
        next_value = evalConstExpr(value.get(), &ok);
        if (!ok) {
          diags_.error(peek().location, "parse",
                       "enumerator value must be constant");
        }
      }
      if (scopes_.empty()) scopes_.emplace_back();
      scopes_.back().enum_constants[name] = next_value;
      ++next_value;
      if (!accept(TokenKind::kComma)) break;
    }
    expect(TokenKind::kRBrace, "to close enum definition");
  }
  return types_.intType();
}

bool Parser::parseDeclarator(const Type* base, Declarator& out) {
  const Type* type = base;
  while (accept(TokenKind::kStar)) {
    type = types_.pointerTo(type);
    while (check(TokenKind::kKwConst) || check(TokenKind::kKwVolatile)) {
      advance();
    }
  }

  // Function pointer declarator: (*name)(params)
  if (check(TokenKind::kLParen) && peek(1).is(TokenKind::kStar)) {
    advance();  // (
    advance();  // *
    if (!check(TokenKind::kIdentifier)) {
      diags_.error(peek().location, "parse",
                   "expected name in function-pointer declarator");
      return false;
    }
    out.name = peek().text;
    out.loc = peek().location;
    advance();
    if (!expect(TokenKind::kRParen, "after function-pointer name")) {
      return false;
    }
    if (!expect(TokenKind::kLParen, "to start parameter list")) return false;
    std::vector<const Type*> params;
    bool variadic = false;
    if (!check(TokenKind::kRParen)) {
      do {
        if (accept(TokenKind::kEllipsis)) {
          variadic = true;
          break;
        }
        DeclSpec spec;
        if (!parseDeclSpec(spec)) {
          diags_.error(peek().location, "parse", "expected parameter type");
          return false;
        }
        Declarator d;
        if (!parseDeclarator(spec.base, d)) return false;
        if (!(d.type->isVoid() && d.name.empty())) {
          params.push_back(decay(d.type));
        }
      } while (accept(TokenKind::kComma));
    }
    if (!expect(TokenKind::kRParen, "to close parameter list")) return false;
    const FunctionType* ft =
        types_.functionType(type, std::move(params), variadic);
    out.type = types_.pointerTo(ft);
    return true;
  }

  if (check(TokenKind::kIdentifier)) {
    out.name = peek().text;
    out.loc = peek().location;
    advance();
  } else {
    out.loc = peek().location;  // abstract declarator (e.g. in casts)
  }

  // Function declarator.
  if (check(TokenKind::kLParen) && !out.name.empty()) {
    advance();
    std::vector<const Type*> param_types;
    bool variadic = false;
    std::vector<std::unique_ptr<VarDecl>> params;
    if (!check(TokenKind::kRParen)) {
      do {
        if (accept(TokenKind::kEllipsis)) {
          variadic = true;
          break;
        }
        DeclSpec spec;
        if (!parseDeclSpec(spec)) {
          diags_.error(peek().location, "parse", "expected parameter type");
          return false;
        }
        Declarator d;
        if (!parseDeclarator(spec.base, d)) return false;
        if (d.type->isVoid() && d.name.empty()) break;  // f(void)
        const Type* pt = decay(d.type);
        param_types.push_back(pt);
        params.push_back(std::make_unique<VarDecl>(
            d.name, pt, StorageKind::kParam,
            d.loc.valid() ? d.loc : out.loc));
      } while (accept(TokenKind::kComma));
    }
    if (!expect(TokenKind::kRParen, "to close parameter list")) return false;
    out.type = types_.functionType(type, std::move(param_types), variadic);
    out.is_function = true;
    out.params = std::move(params);
    return true;
  }

  // Array suffixes (possibly multi-dimensional).
  std::vector<std::uint64_t> dims;
  while (accept(TokenKind::kLBracket)) {
    if (check(TokenKind::kRBracket)) {
      dims.push_back(0);  // incomplete array (extern decl / param)
    } else {
      ExprPtr size = parseConditional();
      bool ok = true;
      const std::int64_t n = evalConstExpr(size.get(), &ok);
      if (!ok || n < 0) {
        diags_.error(out.loc, "parse", "array size must be a non-negative "
                                       "integer constant");
        dims.push_back(0);
      } else {
        dims.push_back(static_cast<std::uint64_t>(n));
      }
    }
    if (!expect(TokenKind::kRBracket, "to close array bound")) return false;
  }
  for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
    type = types_.arrayOf(type, *it);
  }

  out.type = type;
  return true;
}

const Type* Parser::decay(const Type* t) {
  if (t->isArray()) {
    return types_.pointerTo(static_cast<const ArrayType*>(t)->element());
  }
  if (t->isFunction()) return types_.pointerTo(t);
  return t;
}

const Type* Parser::arithmeticResult(const Type* a, const Type* b) {
  if (a->isFloat() || b->isFloat()) {
    return (a->size() == 8 || b->size() == 8) ? types_.doubleType()
                                              : types_.floatType();
  }
  // Integer promotion: at least int, widest wins, unsigned wins ties.
  const std::uint64_t bytes = std::max<std::uint64_t>(
      4, std::max(a->size(), b->size()));
  const bool a_signed =
      a->isInteger() && static_cast<const IntegerType*>(a)->isSigned();
  const bool b_signed =
      b->isInteger() && static_cast<const IntegerType*>(b)->isSigned();
  return types_.integerType(bytes, a_signed && b_signed);
}

bool Parser::parseTranslationUnit(TranslationUnit& tu) {
  tu_ = &tu;
  scopes_.clear();
  pushScope();
  // Pre-register previously parsed decls (multi-file analysis reuses the
  // same TU), so later files see earlier globals/functions/typedefs.
  for (const auto& g : tu.globals()) declareValue(g->name(), g.get());
  for (const auto& f : tu.functions()) declareValue(f->name(), f.get());
  for (const auto& [name, type] : tu.typedefs()) typedefs_[name] = type;

  std::vector<RawAnnotation> pending;
  while (!check(TokenKind::kEof) && !fatal_) {
    if (check(TokenKind::kAnnotation)) {
      const Token& t = advance();
      pending.push_back(RawAnnotation{t.text, t.location});
      continue;
    }
    if (!parseExternalDeclaration(tu, pending)) {
      synchronizeToSemi();
    }
  }
  popScope();
  return !fatal_ && !diags_.hasErrors();
}

bool Parser::parseExternalDeclaration(TranslationUnit& tu,
                                      std::vector<RawAnnotation>& pending) {
  if (accept(TokenKind::kSemi)) return true;

  DeclSpec spec;
  if (!parseDeclSpec(spec)) {
    diags_.error(peek().location, "parse",
                 "expected declaration, found '" + peek().text + "'");
    advance();
    return false;
  }

  // `struct S { ... };` or `enum {...};` alone.
  if (accept(TokenKind::kSemi)) return true;

  bool first = true;
  do {
    Declarator d;
    if (!parseDeclarator(spec.base, d)) return false;
    if (d.name.empty()) {
      diags_.error(d.loc, "parse", "expected declarator name");
      return false;
    }

    if (spec.is_typedef) {
      typedefs_[d.name] = d.type;
      tu.addTypedef(d.name, d.type);
      continue;
    }

    if (d.is_function) {
      auto fn = std::make_unique<FunctionDecl>(
          d.name, static_cast<const FunctionType*>(d.type),
          std::move(d.params), d.loc);
      FunctionDecl* fn_raw = fn.get();
      for (RawAnnotation& a : pending) fn_raw->addEntryAnnotation(std::move(a));
      pending.clear();
      // Annotations between the signature and the body.
      while (check(TokenKind::kAnnotation)) {
        const Token& t = advance();
        fn_raw->addEntryAnnotation(RawAnnotation{t.text, t.location});
      }
      if (first && check(TokenKind::kLBrace)) {
        tu.addFunction(std::move(fn));
        declareValue(d.name, fn_raw);
        pushScope();
        for (const auto& p : fn_raw->params()) {
          if (!p->name().empty()) declareValue(p->name(), p.get());
        }
        StmtPtr body = parseCompound();
        popScope();
        if (body == nullptr) return false;
        fn_raw->setBody(std::move(body));
        return true;
      }
      tu.addFunction(std::move(fn));
      declareValue(d.name, fn_raw);
      continue;
    }

    // Global variable.
    const StorageKind storage =
        spec.is_extern ? StorageKind::kExtern : StorageKind::kGlobal;
    auto var = std::make_unique<VarDecl>(d.name, d.type, storage, d.loc);
    if (accept(TokenKind::kAssign)) {
      var->setInit(parseInitializer(d.type));
    }
    VarDecl* raw = tu.addGlobal(std::move(var));
    declareValue(d.name, raw);
    first = false;
  } while (accept(TokenKind::kComma));

  if (!pending.empty()) {
    diags_.warning(pending.front().location, "annotation",
                   "annotation not attached to a function; ignored");
    pending.clear();
  }
  return expect(TokenKind::kSemi, "after declaration");
}

StmtPtr Parser::parseLocalDeclaration() {
  const SourceLocation loc = peek().location;
  DeclSpec spec;
  if (!parseDeclSpec(spec)) return nullptr;
  if (spec.is_typedef) {
    // Local typedefs resolve like globals; rare in corpora but harmless.
    do {
      Declarator d;
      if (!parseDeclarator(spec.base, d)) break;
      typedefs_[d.name] = d.type;
      tu_->addTypedef(d.name, d.type);
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kSemi, "after typedef");
    return std::make_unique<NullStmt>(loc);
  }
  std::vector<std::unique_ptr<VarDecl>> decls;
  do {
    Declarator d;
    if (!parseDeclarator(spec.base, d)) break;
    if (d.name.empty()) {
      diags_.error(d.loc, "parse", "expected variable name");
      break;
    }
    auto var = std::make_unique<VarDecl>(
        d.name, d.type,
        spec.is_extern ? StorageKind::kExtern : StorageKind::kLocal, d.loc);
    if (accept(TokenKind::kAssign)) var->setInit(parseInitializer(d.type));
    declareValue(d.name, var.get());
    decls.push_back(std::move(var));
  } while (accept(TokenKind::kComma));
  expect(TokenKind::kSemi, "after declaration");
  return std::make_unique<DeclStmt>(std::move(decls), loc);
}

StmtPtr Parser::parseCompound() {
  const SourceLocation loc = peek().location;
  if (!expect(TokenKind::kLBrace, "to open block")) return nullptr;
  pushScope();
  std::vector<StmtPtr> stmts;
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    StmtPtr s = parseStatement();
    if (s != nullptr) stmts.push_back(std::move(s));
  }
  popScope();
  expect(TokenKind::kRBrace, "to close block");
  return std::make_unique<CompoundStmt>(std::move(stmts), loc);
}

StmtPtr Parser::parseStatement() {
  const SourceLocation loc = peek().location;
  switch (peek().kind) {
    case TokenKind::kLBrace:
      return parseCompound();
    case TokenKind::kSemi:
      advance();
      return std::make_unique<NullStmt>(loc);
    case TokenKind::kAnnotation: {
      const Token& t = advance();
      return std::make_unique<AnnotationStmt>(
          RawAnnotation{t.text, t.location}, loc);
    }
    case TokenKind::kKwIf: {
      advance();
      expect(TokenKind::kLParen, "after 'if'");
      ExprPtr cond = parseExpr();
      expect(TokenKind::kRParen, "after if condition");
      StmtPtr then = parseStatement();
      StmtPtr otherwise;
      if (accept(TokenKind::kKwElse)) otherwise = parseStatement();
      return std::make_unique<IfStmt>(std::move(cond), std::move(then),
                                      std::move(otherwise), loc);
    }
    case TokenKind::kKwWhile: {
      advance();
      expect(TokenKind::kLParen, "after 'while'");
      ExprPtr cond = parseExpr();
      expect(TokenKind::kRParen, "after while condition");
      StmtPtr body = parseStatement();
      return std::make_unique<WhileStmt>(std::move(cond), std::move(body),
                                         loc);
    }
    case TokenKind::kKwDo: {
      advance();
      StmtPtr body = parseStatement();
      expect(TokenKind::kKwWhile, "after do body");
      expect(TokenKind::kLParen, "after 'while'");
      ExprPtr cond = parseExpr();
      expect(TokenKind::kRParen, "after do-while condition");
      expect(TokenKind::kSemi, "after do-while");
      return std::make_unique<DoStmt>(std::move(body), std::move(cond), loc);
    }
    case TokenKind::kKwFor: {
      advance();
      expect(TokenKind::kLParen, "after 'for'");
      pushScope();
      StmtPtr init;
      if (!accept(TokenKind::kSemi)) {
        if (startsType()) {
          init = parseLocalDeclaration();
        } else {
          ExprPtr e = parseExpr();
          expect(TokenKind::kSemi, "after for initializer");
          init = std::make_unique<ExprStmt>(std::move(e), loc);
        }
      }
      ExprPtr cond;
      if (!check(TokenKind::kSemi)) cond = parseExpr();
      expect(TokenKind::kSemi, "after for condition");
      ExprPtr step;
      if (!check(TokenKind::kRParen)) step = parseExpr();
      expect(TokenKind::kRParen, "to close for header");
      StmtPtr body = parseStatement();
      popScope();
      return std::make_unique<ForStmt>(std::move(init), std::move(cond),
                                       std::move(step), std::move(body), loc);
    }
    case TokenKind::kKwReturn: {
      advance();
      ExprPtr value;
      if (!check(TokenKind::kSemi)) value = parseExpr();
      expect(TokenKind::kSemi, "after return");
      return std::make_unique<ReturnStmt>(std::move(value), loc);
    }
    case TokenKind::kKwBreak:
      advance();
      expect(TokenKind::kSemi, "after break");
      return std::make_unique<BreakStmt>(loc);
    case TokenKind::kKwContinue:
      advance();
      expect(TokenKind::kSemi, "after continue");
      return std::make_unique<ContinueStmt>(loc);
    case TokenKind::kKwSwitch: {
      advance();
      expect(TokenKind::kLParen, "after 'switch'");
      ExprPtr cond = parseExpr();
      expect(TokenKind::kRParen, "after switch condition");
      StmtPtr body = parseStatement();
      return std::make_unique<SwitchStmt>(std::move(cond), std::move(body),
                                          loc);
    }
    case TokenKind::kKwCase: {
      advance();
      ExprPtr value = parseConditional();
      bool ok = true;
      const std::int64_t v = evalConstExpr(value.get(), &ok);
      if (!ok) diags_.error(loc, "parse", "case label must be constant");
      expect(TokenKind::kColon, "after case label");
      return std::make_unique<CaseStmt>(v, loc);
    }
    case TokenKind::kKwDefault:
      advance();
      expect(TokenKind::kColon, "after 'default'");
      return std::make_unique<CaseStmt>(std::nullopt, loc);
    case TokenKind::kKwGoto:
      diags_.error(loc, "parse", "goto is outside the supported C subset");
      synchronizeToSemi();
      return std::make_unique<NullStmt>(loc);
    default:
      break;
  }

  if (startsType()) return parseLocalDeclaration();

  ExprPtr e = parseExpr();
  expect(TokenKind::kSemi, "after expression statement");
  return std::make_unique<ExprStmt>(std::move(e), loc);
}

ExprPtr Parser::parseInitializer(const Type* type) {
  if (!check(TokenKind::kLBrace)) return parseAssignment();
  const SourceLocation loc = advance().location;
  std::vector<ExprPtr> items;
  if (!check(TokenKind::kRBrace)) {
    // Element type for nested typing: array element or struct field.
    do {
      if (check(TokenKind::kRBrace)) break;  // trailing comma
      const Type* elem = types_.intType();
      if (type != nullptr && type->isArray()) {
        elem = static_cast<const ArrayType*>(type)->element();
      } else if (type != nullptr && type->isStruct()) {
        const auto* st = static_cast<const StructType*>(type);
        if (items.size() < st->fields().size()) {
          elem = st->fields()[items.size()].type;
        }
      }
      items.push_back(parseInitializer(elem));
    } while (accept(TokenKind::kComma));
  }
  expect(TokenKind::kRBrace, "to close initializer list");
  return std::make_unique<InitListExpr>(
      std::move(items), type != nullptr ? type : types_.intType(), loc);
}

ExprPtr Parser::parseExpr() {
  ExprPtr lhs = parseAssignment();
  while (check(TokenKind::kComma)) {
    const SourceLocation loc = advance().location;
    ExprPtr rhs = parseAssignment();
    const Type* t = rhs ? rhs->type() : types_.intType();
    lhs = std::make_unique<BinaryExpr>(BinaryOp::kComma, std::move(lhs),
                                       std::move(rhs), t, loc);
  }
  return lhs;
}

ExprPtr Parser::parseAssignment() {
  ExprPtr lhs = parseConditional();
  if (lhs == nullptr) return nullptr;
  const TokenKind k = peek().kind;
  if (k == TokenKind::kAssign || compoundOpFor(k).has_value()) {
    const SourceLocation loc = advance().location;
    ExprPtr rhs = parseAssignment();
    const Type* t = lhs->type();
    return std::make_unique<AssignExpr>(std::move(lhs), std::move(rhs),
                                        compoundOpFor(k), t, loc);
  }
  return lhs;
}

ExprPtr Parser::parseConditional() {
  ExprPtr cond = parseBinary(1);
  if (cond == nullptr || !check(TokenKind::kQuestion)) return cond;
  const SourceLocation loc = advance().location;
  ExprPtr then = parseExpr();
  expect(TokenKind::kColon, "in conditional expression");
  ExprPtr otherwise = parseConditional();
  const Type* t = then ? then->type() : types_.intType();
  if (then != nullptr && otherwise != nullptr &&
      then->type()->isArithmetic() && otherwise->type()->isArithmetic()) {
    t = arithmeticResult(then->type(), otherwise->type());
  }
  return std::make_unique<ConditionalExpr>(std::move(cond), std::move(then),
                                           std::move(otherwise), t, loc);
}

ExprPtr Parser::parseBinary(int min_prec) {
  ExprPtr lhs = parseUnary();
  while (lhs != nullptr) {
    const int prec = binaryPrecedence(peek().kind);
    if (prec < min_prec) break;
    const TokenKind k = peek().kind;
    const SourceLocation loc = advance().location;
    ExprPtr rhs = parseBinary(prec + 1);
    if (rhs == nullptr) break;
    const std::optional<BinaryOp> mapped = binaryOpFor(k);
    if (!mapped.has_value()) {
      diags_.error(loc, "parse",
                   "unsupported binary operator '" +
                       std::string(tokenKindName(k)) + "'");
      break;
    }
    const BinaryOp op = *mapped;
    const Type* t = types_.intType();
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
        if (lhs->type()->isPointer() || lhs->type()->isArray()) {
          t = decay(lhs->type());
        } else if (rhs->type()->isPointer() || rhs->type()->isArray()) {
          t = decay(rhs->type());
        } else {
          t = arithmeticResult(lhs->type(), rhs->type());
        }
        break;
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kRem:
        t = arithmeticResult(lhs->type(), rhs->type());
        break;
      case BinaryOp::kBitAnd:
      case BinaryOp::kBitOr:
      case BinaryOp::kBitXor:
      case BinaryOp::kShl:
      case BinaryOp::kShr:
        t = arithmeticResult(lhs->type(), rhs->type());
        break;
      default:
        t = types_.intType();  // comparisons, logical ops
        break;
    }
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), t,
                                       loc);
  }
  return lhs;
}

ExprPtr Parser::parseUnary() {
  const SourceLocation loc = peek().location;
  switch (peek().kind) {
    case TokenKind::kPlus:
      advance();
      return parseUnary();
    case TokenKind::kMinus: {
      advance();
      ExprPtr e = parseUnary();
      const Type* t = e ? e->type() : types_.intType();
      return std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(e), t, loc);
    }
    case TokenKind::kBang: {
      advance();
      ExprPtr e = parseUnary();
      return std::make_unique<UnaryExpr>(UnaryOp::kLogNot, std::move(e),
                                         types_.intType(), loc);
    }
    case TokenKind::kTilde: {
      advance();
      ExprPtr e = parseUnary();
      const Type* t = e ? e->type() : types_.intType();
      return std::make_unique<UnaryExpr>(UnaryOp::kBitNot, std::move(e), t,
                                         loc);
    }
    case TokenKind::kStar: {
      advance();
      ExprPtr e = parseUnary();
      const Type* t = types_.intType();
      if (e != nullptr) {
        const Type* et = decay(e->type());
        if (et->isPointer()) {
          t = static_cast<const PointerType*>(et)->pointee();
        } else {
          diags_.error(loc, "type", "cannot dereference non-pointer");
        }
      }
      return std::make_unique<UnaryExpr>(UnaryOp::kDeref, std::move(e), t,
                                         loc);
    }
    case TokenKind::kAmp: {
      advance();
      ExprPtr e = parseUnary();
      const Type* t =
          e ? types_.pointerTo(e->type()) : types_.pointerTo(types_.intType());
      return std::make_unique<UnaryExpr>(UnaryOp::kAddrOf, std::move(e), t,
                                         loc);
    }
    case TokenKind::kPlusPlus: {
      advance();
      ExprPtr e = parseUnary();
      const Type* t = e ? e->type() : types_.intType();
      return std::make_unique<UnaryExpr>(UnaryOp::kPreInc, std::move(e), t,
                                         loc);
    }
    case TokenKind::kMinusMinus: {
      advance();
      ExprPtr e = parseUnary();
      const Type* t = e ? e->type() : types_.intType();
      return std::make_unique<UnaryExpr>(UnaryOp::kPreDec, std::move(e), t,
                                         loc);
    }
    case TokenKind::kKwSizeof: {
      advance();
      if (check(TokenKind::kLParen)) {
        // Could be sizeof(type) or sizeof(expr).
        const std::size_t save = pos_;
        advance();
        if (startsType()) {
          const Type* t = parseTypeName();
          expect(TokenKind::kRParen, "after sizeof type");
          return std::make_unique<SizeofExpr>(t ? t->size() : 0, t,
                                              types_.ulongType(), loc);
        }
        pos_ = save;
      }
      ExprPtr e = parseUnary();
      const Type* t = e ? e->type() : types_.intType();
      return std::make_unique<SizeofExpr>(t->size(), t, types_.ulongType(),
                                          loc);
    }
    case TokenKind::kLParen: {
      // Cast vs parenthesized expression.
      if (startsTypeAt(1)) {
        advance();
        const Type* t = parseTypeName();
        expect(TokenKind::kRParen, "after cast type");
        ExprPtr e = parseUnary();
        return std::make_unique<CastExpr>(std::move(e),
                                          t ? t : types_.intType(), loc);
      }
      break;
    }
    default:
      break;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr e = parsePrimary();
  while (e != nullptr) {
    const SourceLocation loc = peek().location;
    if (accept(TokenKind::kLBracket)) {
      ExprPtr index = parseExpr();
      expect(TokenKind::kRBracket, "after array index");
      const Type* base_t = decay(e->type());
      const Type* t = types_.intType();
      if (base_t->isPointer()) {
        t = static_cast<const PointerType*>(base_t)->pointee();
      } else {
        diags_.error(loc, "type", "subscript of non-pointer/array");
      }
      e = std::make_unique<SubscriptExpr>(std::move(e), std::move(index), t,
                                          loc);
      continue;
    }
    if (check(TokenKind::kDot) || check(TokenKind::kArrow)) {
      const bool is_arrow = peek().is(TokenKind::kArrow);
      advance();
      if (!check(TokenKind::kIdentifier)) {
        diags_.error(loc, "parse", "expected member name");
        return e;
      }
      const std::string member = advance().text;
      const Type* base_t = e->type();
      if (is_arrow) {
        base_t = decay(base_t);
        base_t = base_t->isPointer()
                     ? static_cast<const PointerType*>(base_t)->pointee()
                     : nullptr;
      }
      const Type* t = types_.intType();
      if (base_t != nullptr && base_t->isStruct()) {
        const auto* st = static_cast<const StructType*>(base_t);
        if (const StructField* f = st->findField(member)) {
          t = f->type;
        } else {
          diags_.error(loc, "type", "no field '" + member + "' in " +
                                        st->str());
        }
      } else {
        diags_.error(loc, "type", "member access on non-struct");
      }
      e = std::make_unique<MemberExpr>(std::move(e), member, is_arrow, t,
                                       loc);
      continue;
    }
    if (accept(TokenKind::kLParen)) {
      std::vector<ExprPtr> args;
      if (!check(TokenKind::kRParen)) {
        do {
          args.push_back(parseAssignment());
        } while (accept(TokenKind::kComma));
      }
      expect(TokenKind::kRParen, "to close call");
      const Type* callee_t = e->type();
      if (callee_t->isPointer()) {
        callee_t = static_cast<const PointerType*>(callee_t)->pointee();
      }
      const Type* ret = types_.intType();
      if (callee_t->isFunction()) {
        ret = static_cast<const FunctionType*>(callee_t)->returnType();
      } else {
        diags_.error(loc, "type", "call of non-function");
      }
      e = std::make_unique<CallExpr>(std::move(e), std::move(args), ret, loc);
      continue;
    }
    if (check(TokenKind::kPlusPlus) || check(TokenKind::kMinusMinus)) {
      const bool inc = peek().is(TokenKind::kPlusPlus);
      advance();
      const Type* t = e->type();
      e = std::make_unique<UnaryExpr>(
          inc ? UnaryOp::kPostInc : UnaryOp::kPostDec, std::move(e), t, loc);
      continue;
    }
    break;
  }
  return e;
}

ExprPtr Parser::parsePrimary() {
  const Token& t = peek();
  const SourceLocation loc = t.location;
  switch (t.kind) {
    case TokenKind::kIntLiteral: {
      const std::int64_t v = parseIntText(t.text);
      advance();
      return std::make_unique<IntLitExpr>(v, types_.intType(), loc);
    }
    case TokenKind::kFloatLiteral: {
      const double v = std::strtod(t.text.c_str(), nullptr);
      advance();
      return std::make_unique<FloatLitExpr>(v, types_.doubleType(), loc);
    }
    case TokenKind::kCharLiteral: {
      const std::int64_t v = charLiteralValue(t.text);
      advance();
      return std::make_unique<IntLitExpr>(v, types_.intType(), loc);
    }
    case TokenKind::kStringLiteral: {
      std::string s = t.text;
      advance();
      // Adjacent string literal concatenation.
      while (check(TokenKind::kStringLiteral)) s += advance().text;
      return std::make_unique<StringLitExpr>(
          std::move(s), types_.pointerTo(types_.charType()), loc);
    }
    case TokenKind::kLParen: {
      advance();
      ExprPtr e = parseExpr();
      expect(TokenKind::kRParen, "to close parenthesized expression");
      return e;
    }
    case TokenKind::kIdentifier: {
      const std::string name = t.text;
      if (const std::int64_t* ev = lookupEnumConstant(name)) {
        advance();
        return std::make_unique<IntLitExpr>(*ev, types_.intType(), loc);
      }
      if (const ValueDecl* decl = lookupValue(name)) {
        advance();
        return std::make_unique<DeclRefExpr>(decl, decl->type(), loc);
      }
      // Implicit function declaration (classic C): `name(...)` with no
      // prior declaration becomes `extern int name(...)`.
      if (peek(1).is(TokenKind::kLParen)) {
        advance();
        const FunctionType* ft =
            types_.functionType(types_.intType(), {}, /*variadic=*/true);
        auto fn = std::make_unique<FunctionDecl>(name, ft,
                                                 std::vector<std::unique_ptr<VarDecl>>{},
                                                 loc);
        FunctionDecl* raw = tu_->addFunction(std::move(fn));
        // Declare at file scope so later uses resolve to the same decl.
        scopes_.front().values[name] = raw;
        diags_.warning(loc, "sema",
                       "implicit declaration of function '" + name + "'");
        return std::make_unique<DeclRefExpr>(raw, ft, loc);
      }
      advance();
      diags_.error(loc, "sema", "use of undeclared identifier '" + name +
                                    "'");
      return std::make_unique<IntLitExpr>(0, types_.intType(), loc);
    }
    default:
      diags_.error(loc, "parse",
                   "expected expression, found '" + t.text + "' (" +
                       std::string(tokenKindName(t.kind)) + ")");
      advance();
      if (check(TokenKind::kEof)) fatal_ = true;
      return std::make_unique<IntLitExpr>(0, types_.intType(), loc);
  }
}

const Type* Parser::parseTypeName() {
  DeclSpec spec;
  if (!parseDeclSpec(spec)) {
    diags_.error(peek().location, "parse", "expected type name");
    return nullptr;
  }
  Declarator d;
  if (!parseDeclarator(spec.base, d)) return spec.base;
  if (!d.name.empty()) {
    diags_.error(d.loc, "parse", "unexpected name in type");
  }
  return d.type;
}

std::int64_t Parser::evalConstExpr(const Expr* e, bool* ok) {
  bool dummy = true;
  bool& good = ok ? *ok : dummy;
  if (e == nullptr) {
    good = false;
    return 0;
  }
  switch (e->kind()) {
    case Expr::Kind::kIntLit:
      return static_cast<const IntLitExpr*>(e)->value();
    case Expr::Kind::kSizeof:
      return static_cast<std::int64_t>(
          static_cast<const SizeofExpr*>(e)->value());
    case Expr::Kind::kUnary: {
      const auto* u = static_cast<const UnaryExpr*>(e);
      const std::int64_t v = evalConstExpr(u->operand(), &good);
      switch (u->op()) {
        case UnaryOp::kNeg: return -v;
        case UnaryOp::kLogNot: return v == 0 ? 1 : 0;
        case UnaryOp::kBitNot: return ~v;
        default: good = false; return 0;
      }
    }
    case Expr::Kind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      const std::int64_t l = evalConstExpr(b->lhs(), &good);
      const std::int64_t r = evalConstExpr(b->rhs(), &good);
      if (!good) return 0;
      switch (b->op()) {
        case BinaryOp::kAdd: return l + r;
        case BinaryOp::kSub: return l - r;
        case BinaryOp::kMul: return l * r;
        case BinaryOp::kDiv: return r == 0 ? (good = false, 0) : l / r;
        case BinaryOp::kRem: return r == 0 ? (good = false, 0) : l % r;
        case BinaryOp::kBitAnd: return l & r;
        case BinaryOp::kBitOr: return l | r;
        case BinaryOp::kBitXor: return l ^ r;
        case BinaryOp::kShl: return l << r;
        case BinaryOp::kShr: return l >> r;
        case BinaryOp::kLt: return l < r;
        case BinaryOp::kGt: return l > r;
        case BinaryOp::kLe: return l <= r;
        case BinaryOp::kGe: return l >= r;
        case BinaryOp::kEq: return l == r;
        case BinaryOp::kNe: return l != r;
        case BinaryOp::kLogAnd: return (l != 0 && r != 0) ? 1 : 0;
        case BinaryOp::kLogOr: return (l != 0 || r != 0) ? 1 : 0;
        default: good = false; return 0;
      }
    }
    case Expr::Kind::kCast:
      return evalConstExpr(static_cast<const CastExpr*>(e)->operand(), &good);
    default:
      good = false;
      return 0;
  }
}

}  // namespace safeflow::cfront
