#include "cfront/frontend.h"

#include "support/metrics.h"

namespace safeflow::cfront {

Frontend::Frontend(std::vector<std::string> include_dirs)
    : tu_(std::make_unique<TranslationUnit>(types_)),
      include_dirs_(std::move(include_dirs)) {}

void Frontend::predefine(std::string name, std::string value) {
  predefines_.emplace_back(std::move(name), std::move(value));
}

bool Frontend::parseFile(const std::string& path) {
  support::ScopedTimer timer("phase.frontend");
  timer.arg("file", path);
  const std::optional<support::FileId> id = sm_.addFile(path);
  if (!id.has_value()) {
    diags_.error({}, "io", "cannot open file '" + path + "'");
    return false;
  }
  SAFEFLOW_COUNT("frontend.files");
  std::vector<Token> tokens;
  {
    const support::ScopedSpan span("frontend.preprocess");
    Preprocessor pp(sm_, diags_, include_dirs_);
    for (const auto& [name, value] : predefines_) pp.predefine(name, value);
    tokens = pp.run(*id);
  }
  return parseTokens(std::move(tokens));
}

bool Frontend::parseBuffer(std::string name, std::string text) {
  support::ScopedTimer timer("phase.frontend");
  timer.arg("file", name);
  const support::FileId id = sm_.addBuffer(std::move(name), std::move(text));
  SAFEFLOW_COUNT("frontend.files");
  std::vector<Token> tokens;
  {
    const support::ScopedSpan span("frontend.preprocess");
    Preprocessor pp(sm_, diags_, include_dirs_);
    for (const auto& [macro, value] : predefines_) pp.predefine(macro, value);
    tokens = pp.run(id);
  }
  return parseTokens(std::move(tokens));
}

bool Frontend::parseTokens(std::vector<Token> tokens) {
  const support::ScopedSpan span("frontend.parse");
  SAFEFLOW_COUNT_N("frontend.tokens", tokens.size());
  const std::size_t errors_before = diags_.errorCount();
  Parser parser(std::move(tokens), types_, diags_);
  parser.parseTranslationUnit(*tu_);
  return diags_.errorCount() == errors_before;
}

}  // namespace safeflow::cfront
