#include "cfront/frontend.h"

namespace safeflow::cfront {

Frontend::Frontend(std::vector<std::string> include_dirs)
    : tu_(std::make_unique<TranslationUnit>(types_)),
      include_dirs_(std::move(include_dirs)) {}

void Frontend::predefine(std::string name, std::string value) {
  predefines_.emplace_back(std::move(name), std::move(value));
}

bool Frontend::parseFile(const std::string& path) {
  const std::optional<support::FileId> id = sm_.addFile(path);
  if (!id.has_value()) {
    diags_.error({}, "io", "cannot open file '" + path + "'");
    return false;
  }
  Preprocessor pp(sm_, diags_, include_dirs_);
  for (const auto& [name, value] : predefines_) pp.predefine(name, value);
  return parseTokens(pp.run(*id));
}

bool Frontend::parseBuffer(std::string name, std::string text) {
  const support::FileId id = sm_.addBuffer(std::move(name), std::move(text));
  Preprocessor pp(sm_, diags_, include_dirs_);
  for (const auto& [macro, value] : predefines_) pp.predefine(macro, value);
  return parseTokens(pp.run(id));
}

bool Frontend::parseTokens(std::vector<Token> tokens) {
  const std::size_t errors_before = diags_.errorCount();
  Parser parser(std::move(tokens), types_, diags_);
  parser.parseTranslationUnit(*tu_);
  return diags_.errorCount() == errors_before;
}

}  // namespace safeflow::cfront
