// Abstract syntax tree for the C subset. Nodes are owned by unique_ptr
// links from their parents; the TranslationUnit owns top-level decls.
// Expression nodes carry the type computed by the parser.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cfront/types.h"
#include "support/source_location.h"

namespace safeflow::cfront {

using support::SourceLocation;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class UnaryOp {
  kNeg,      // -x
  kLogNot,   // !x
  kBitNot,   // ~x
  kAddrOf,   // &x
  kDeref,    // *x
  kPreInc,
  kPreDec,
  kPostInc,
  kPostDec,
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kLogAnd, kLogOr,
  kComma,
};

class Expr {
 public:
  enum class Kind {
    kIntLit, kFloatLit, kStringLit,
    kDeclRef, kUnary, kBinary, kAssign, kConditional,
    kCall, kSubscript, kMember, kCast, kSizeof, kInitList,
  };

  virtual ~Expr() = default;
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const Type* type() const { return type_; }
  [[nodiscard]] SourceLocation location() const { return loc_; }

 protected:
  Expr(Kind kind, const Type* type, SourceLocation loc)
      : kind_(kind), type_(type), loc_(loc) {}

 private:
  Kind kind_;
  const Type* type_;
  SourceLocation loc_;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr final : public Expr {
 public:
  IntLitExpr(std::int64_t value, const Type* type, SourceLocation loc)
      : Expr(Kind::kIntLit, type, loc), value_(value) {}
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_;
};

class FloatLitExpr final : public Expr {
 public:
  FloatLitExpr(double value, const Type* type, SourceLocation loc)
      : Expr(Kind::kFloatLit, type, loc), value_(value) {}
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_;
};

class StringLitExpr final : public Expr {
 public:
  StringLitExpr(std::string value, const Type* type, SourceLocation loc)
      : Expr(Kind::kStringLit, type, loc), value_(std::move(value)) {}
  [[nodiscard]] const std::string& value() const { return value_; }

 private:
  std::string value_;
};

class ValueDecl;  // VarDecl or FunctionDecl

class DeclRefExpr final : public Expr {
 public:
  DeclRefExpr(const ValueDecl* decl, const Type* type, SourceLocation loc)
      : Expr(Kind::kDeclRef, type, loc), decl_(decl) {}
  [[nodiscard]] const ValueDecl* decl() const { return decl_; }

 private:
  const ValueDecl* decl_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand, const Type* type,
            SourceLocation loc)
      : Expr(Kind::kUnary, type, loc), op_(op), operand_(std::move(operand)) {}
  [[nodiscard]] UnaryOp op() const { return op_; }
  [[nodiscard]] const Expr* operand() const { return operand_.get(); }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs, const Type* type,
             SourceLocation loc)
      : Expr(Kind::kBinary, type, loc),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}
  [[nodiscard]] BinaryOp op() const { return op_; }
  [[nodiscard]] const Expr* lhs() const { return lhs_.get(); }
  [[nodiscard]] const Expr* rhs() const { return rhs_.get(); }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Assignment, including compound assignment (op != nullopt encodes `lhs op=
/// rhs` with the arithmetic op).
class AssignExpr final : public Expr {
 public:
  AssignExpr(ExprPtr lhs, ExprPtr rhs, std::optional<BinaryOp> compound_op,
             const Type* type, SourceLocation loc)
      : Expr(Kind::kAssign, type, loc),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)),
        compound_op_(compound_op) {}
  [[nodiscard]] const Expr* lhs() const { return lhs_.get(); }
  [[nodiscard]] const Expr* rhs() const { return rhs_.get(); }
  [[nodiscard]] std::optional<BinaryOp> compoundOp() const {
    return compound_op_;
  }

 private:
  ExprPtr lhs_;
  ExprPtr rhs_;
  std::optional<BinaryOp> compound_op_;
};

class ConditionalExpr final : public Expr {
 public:
  ConditionalExpr(ExprPtr cond, ExprPtr then, ExprPtr otherwise,
                  const Type* type, SourceLocation loc)
      : Expr(Kind::kConditional, type, loc),
        cond_(std::move(cond)),
        then_(std::move(then)),
        else_(std::move(otherwise)) {}
  [[nodiscard]] const Expr* cond() const { return cond_.get(); }
  [[nodiscard]] const Expr* thenExpr() const { return then_.get(); }
  [[nodiscard]] const Expr* elseExpr() const { return else_.get(); }

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(ExprPtr callee, std::vector<ExprPtr> args, const Type* type,
           SourceLocation loc)
      : Expr(Kind::kCall, type, loc),
        callee_(std::move(callee)),
        args_(std::move(args)) {}
  [[nodiscard]] const Expr* callee() const { return callee_.get(); }
  [[nodiscard]] const std::vector<ExprPtr>& args() const { return args_; }

 private:
  ExprPtr callee_;
  std::vector<ExprPtr> args_;
};

class SubscriptExpr final : public Expr {
 public:
  SubscriptExpr(ExprPtr base, ExprPtr index, const Type* type,
                SourceLocation loc)
      : Expr(Kind::kSubscript, type, loc),
        base_(std::move(base)),
        index_(std::move(index)) {}
  [[nodiscard]] const Expr* base() const { return base_.get(); }
  [[nodiscard]] const Expr* index() const { return index_.get(); }

 private:
  ExprPtr base_;
  ExprPtr index_;
};

class MemberExpr final : public Expr {
 public:
  MemberExpr(ExprPtr base, std::string member, bool is_arrow,
             const Type* type, SourceLocation loc)
      : Expr(Kind::kMember, type, loc),
        base_(std::move(base)),
        member_(std::move(member)),
        is_arrow_(is_arrow) {}
  [[nodiscard]] const Expr* base() const { return base_.get(); }
  [[nodiscard]] const std::string& member() const { return member_; }
  [[nodiscard]] bool isArrow() const { return is_arrow_; }

 private:
  ExprPtr base_;
  std::string member_;
  bool is_arrow_;
};

class CastExpr final : public Expr {
 public:
  CastExpr(ExprPtr operand, const Type* type, SourceLocation loc)
      : Expr(Kind::kCast, type, loc), operand_(std::move(operand)) {}
  [[nodiscard]] const Expr* operand() const { return operand_.get(); }

 private:
  ExprPtr operand_;
};

/// Brace-enclosed initializer list: {a, b, ...}, possibly nested. The
/// node's type is the variable's declared type.
class InitListExpr final : public Expr {
 public:
  InitListExpr(std::vector<ExprPtr> items, const Type* type,
               SourceLocation loc)
      : Expr(Kind::kInitList, type, loc), items_(std::move(items)) {}
  [[nodiscard]] const std::vector<ExprPtr>& items() const { return items_; }

 private:
  std::vector<ExprPtr> items_;
};

/// sizeof(type) / sizeof expr, folded to its value at parse time.
class SizeofExpr final : public Expr {
 public:
  SizeofExpr(std::uint64_t value, const Type* of_type, const Type* type,
             SourceLocation loc)
      : Expr(Kind::kSizeof, type, loc), value_(value), of_type_(of_type) {}
  [[nodiscard]] std::uint64_t value() const { return value_; }
  [[nodiscard]] const Type* measuredType() const { return of_type_; }

 private:
  std::uint64_t value_;
  const Type* of_type_;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

/// A raw SafeFlow annotation as found in a comment; parsed by the
/// annotations module.
struct RawAnnotation {
  std::string text;
  SourceLocation location;
};

class ValueDecl {
 public:
  enum class Kind { kVar, kFunction };
  virtual ~ValueDecl() = default;
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Type* type() const { return type_; }
  [[nodiscard]] SourceLocation location() const { return loc_; }

 protected:
  ValueDecl(Kind kind, std::string name, const Type* type,
            SourceLocation loc)
      : kind_(kind), name_(std::move(name)), type_(type), loc_(loc) {}

 private:
  Kind kind_;
  std::string name_;
  const Type* type_;
  SourceLocation loc_;
};

enum class StorageKind { kGlobal, kLocal, kParam, kExtern };

class VarDecl final : public ValueDecl {
 public:
  VarDecl(std::string name, const Type* type, StorageKind storage,
          SourceLocation loc)
      : ValueDecl(Kind::kVar, std::move(name), type, loc),
        storage_(storage) {}

  [[nodiscard]] StorageKind storage() const { return storage_; }
  [[nodiscard]] const Expr* init() const { return init_.get(); }
  void setInit(ExprPtr init) { init_ = std::move(init); }

 private:
  StorageKind storage_;
  ExprPtr init_;
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

class FunctionDecl final : public ValueDecl {
 public:
  FunctionDecl(std::string name, const FunctionType* type,
               std::vector<std::unique_ptr<VarDecl>> params,
               SourceLocation loc)
      : ValueDecl(Kind::kFunction, std::move(name), type, loc),
        params_(std::move(params)) {}

  [[nodiscard]] const FunctionType* functionType() const {
    return static_cast<const FunctionType*>(type());
  }
  [[nodiscard]] const std::vector<std::unique_ptr<VarDecl>>& params() const {
    return params_;
  }
  [[nodiscard]] const Stmt* body() const;
  [[nodiscard]] bool isDefined() const { return body_ != nullptr; }
  void setBody(StmtPtr body);

  /// Annotations written between the signature and the body (assume(core),
  /// shminit, ...).
  [[nodiscard]] const std::vector<RawAnnotation>& entryAnnotations() const {
    return entry_annotations_;
  }
  void addEntryAnnotation(RawAnnotation a) {
    entry_annotations_.push_back(std::move(a));
  }

 private:
  std::vector<std::unique_ptr<VarDecl>> params_;
  StmtPtr body_;
  std::vector<RawAnnotation> entry_annotations_;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

class Stmt {
 public:
  enum class Kind {
    kCompound, kDecl, kExpr, kIf, kWhile, kDo, kFor, kReturn,
    kBreak, kContinue, kSwitch, kCase, kNull, kAnnotation,
  };

  virtual ~Stmt() = default;
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] SourceLocation location() const { return loc_; }

 protected:
  Stmt(Kind kind, SourceLocation loc) : kind_(kind), loc_(loc) {}

 private:
  Kind kind_;
  SourceLocation loc_;
};

class CompoundStmt final : public Stmt {
 public:
  CompoundStmt(std::vector<StmtPtr> stmts, SourceLocation loc)
      : Stmt(Kind::kCompound, loc), stmts_(std::move(stmts)) {}
  [[nodiscard]] const std::vector<StmtPtr>& stmts() const { return stmts_; }

 private:
  std::vector<StmtPtr> stmts_;
};

class DeclStmt final : public Stmt {
 public:
  DeclStmt(std::vector<std::unique_ptr<VarDecl>> decls, SourceLocation loc)
      : Stmt(Kind::kDecl, loc), decls_(std::move(decls)) {}
  [[nodiscard]] const std::vector<std::unique_ptr<VarDecl>>& decls() const {
    return decls_;
  }

 private:
  std::vector<std::unique_ptr<VarDecl>> decls_;
};

class ExprStmt final : public Stmt {
 public:
  ExprStmt(ExprPtr expr, SourceLocation loc)
      : Stmt(Kind::kExpr, loc), expr_(std::move(expr)) {}
  [[nodiscard]] const Expr* expr() const { return expr_.get(); }

 private:
  ExprPtr expr_;
};

class IfStmt final : public Stmt {
 public:
  IfStmt(ExprPtr cond, StmtPtr then, StmtPtr otherwise, SourceLocation loc)
      : Stmt(Kind::kIf, loc),
        cond_(std::move(cond)),
        then_(std::move(then)),
        else_(std::move(otherwise)) {}
  [[nodiscard]] const Expr* cond() const { return cond_.get(); }
  [[nodiscard]] const Stmt* thenStmt() const { return then_.get(); }
  [[nodiscard]] const Stmt* elseStmt() const { return else_.get(); }

 private:
  ExprPtr cond_;
  StmtPtr then_;
  StmtPtr else_;
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt(ExprPtr cond, StmtPtr body, SourceLocation loc)
      : Stmt(Kind::kWhile, loc),
        cond_(std::move(cond)),
        body_(std::move(body)) {}
  [[nodiscard]] const Expr* cond() const { return cond_.get(); }
  [[nodiscard]] const Stmt* body() const { return body_.get(); }

 private:
  ExprPtr cond_;
  StmtPtr body_;
};

class DoStmt final : public Stmt {
 public:
  DoStmt(StmtPtr body, ExprPtr cond, SourceLocation loc)
      : Stmt(Kind::kDo, loc), body_(std::move(body)), cond_(std::move(cond)) {}
  [[nodiscard]] const Stmt* body() const { return body_.get(); }
  [[nodiscard]] const Expr* cond() const { return cond_.get(); }

 private:
  StmtPtr body_;
  ExprPtr cond_;
};

class ForStmt final : public Stmt {
 public:
  ForStmt(StmtPtr init, ExprPtr cond, ExprPtr step, StmtPtr body,
          SourceLocation loc)
      : Stmt(Kind::kFor, loc),
        init_(std::move(init)),
        cond_(std::move(cond)),
        step_(std::move(step)),
        body_(std::move(body)) {}
  [[nodiscard]] const Stmt* init() const { return init_.get(); }
  [[nodiscard]] const Expr* cond() const { return cond_.get(); }
  [[nodiscard]] const Expr* step() const { return step_.get(); }
  [[nodiscard]] const Stmt* body() const { return body_.get(); }

 private:
  StmtPtr init_;
  ExprPtr cond_;
  ExprPtr step_;
  StmtPtr body_;
};

class ReturnStmt final : public Stmt {
 public:
  ReturnStmt(ExprPtr value, SourceLocation loc)
      : Stmt(Kind::kReturn, loc), value_(std::move(value)) {}
  [[nodiscard]] const Expr* value() const { return value_.get(); }

 private:
  ExprPtr value_;
};

class BreakStmt final : public Stmt {
 public:
  explicit BreakStmt(SourceLocation loc) : Stmt(Kind::kBreak, loc) {}
};

class ContinueStmt final : public Stmt {
 public:
  explicit ContinueStmt(SourceLocation loc) : Stmt(Kind::kContinue, loc) {}
};

class CaseStmt final : public Stmt {
 public:
  /// is_default when this is `default:`. Body statements run until the next
  /// case or the end of the switch (fallthrough is represented naturally).
  CaseStmt(std::optional<std::int64_t> value, SourceLocation loc)
      : Stmt(Kind::kCase, loc), value_(value) {}
  [[nodiscard]] bool isDefault() const { return !value_.has_value(); }
  [[nodiscard]] std::int64_t value() const { return *value_; }

 private:
  std::optional<std::int64_t> value_;
};

class SwitchStmt final : public Stmt {
 public:
  SwitchStmt(ExprPtr cond, StmtPtr body, SourceLocation loc)
      : Stmt(Kind::kSwitch, loc),
        cond_(std::move(cond)),
        body_(std::move(body)) {}
  [[nodiscard]] const Expr* cond() const { return cond_.get(); }
  [[nodiscard]] const Stmt* body() const { return body_.get(); }

 private:
  ExprPtr cond_;
  StmtPtr body_;
};

class NullStmt final : public Stmt {
 public:
  explicit NullStmt(SourceLocation loc) : Stmt(Kind::kNull, loc) {}
};

/// A SafeFlow annotation in statement position (assert(safe(x)),
/// shmvar/noncore post-conditions).
class AnnotationStmt final : public Stmt {
 public:
  AnnotationStmt(RawAnnotation annotation, SourceLocation loc)
      : Stmt(Kind::kAnnotation, loc), annotation_(std::move(annotation)) {}
  [[nodiscard]] const RawAnnotation& annotation() const {
    return annotation_;
  }

 private:
  RawAnnotation annotation_;
};

inline const Stmt* FunctionDecl::body() const { return body_.get(); }
inline void FunctionDecl::setBody(StmtPtr body) { body_ = std::move(body); }

// ---------------------------------------------------------------------------
// Translation unit
// ---------------------------------------------------------------------------

class TranslationUnit {
 public:
  explicit TranslationUnit(TypeContext& types) : types_(types) {}

  [[nodiscard]] TypeContext& types() const { return types_; }
  [[nodiscard]] const std::vector<std::unique_ptr<VarDecl>>& globals() const {
    return globals_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<FunctionDecl>>& functions()
      const {
    return functions_;
  }
  [[nodiscard]] const std::map<std::string, const Type*>& typedefs() const {
    return typedefs_;
  }

  VarDecl* addGlobal(std::unique_ptr<VarDecl> var);
  FunctionDecl* addFunction(std::unique_ptr<FunctionDecl> fn);
  void addTypedef(const std::string& name, const Type* type) {
    typedefs_[name] = type;
  }

  [[nodiscard]] const FunctionDecl* findFunction(std::string_view name) const;
  [[nodiscard]] const VarDecl* findGlobal(std::string_view name) const;

 private:
  TypeContext& types_;
  std::vector<std::unique_ptr<VarDecl>> globals_;
  std::vector<std::unique_ptr<FunctionDecl>> functions_;
  std::map<std::string, const Type*> typedefs_;
};

}  // namespace safeflow::cfront
