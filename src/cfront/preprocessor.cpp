#include "cfront/preprocessor.h"

#include <algorithm>
#include <cassert>

namespace safeflow::cfront {

namespace {
std::string directoryOf(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? std::string(".")
                                         : std::string(path.substr(0, slash));
}
}  // namespace

Preprocessor::Preprocessor(support::SourceManager& sm,
                           support::DiagnosticEngine& diags,
                           std::vector<std::string> include_dirs)
    : sm_(sm), diags_(diags), include_dirs_(std::move(include_dirs)) {}

void Preprocessor::predefine(std::string name, std::string value) {
  Macro m;
  if (!value.empty()) {
    const support::FileId id = sm_.addBuffer("<predefined>", value);
    Lexer lex(id, sm_.contents(id), diags_);
    for (Token t = lex.next(); !t.is(TokenKind::kEof); t = lex.next()) {
      m.body.push_back(std::move(t));
    }
  }
  macros_[std::move(name)] = std::move(m);
}

bool Preprocessor::active() const {
  return std::all_of(conditionals_.begin(), conditionals_.end(),
                     [](const auto& c) { return c.first; });
}

Token Preprocessor::rawNext() {
  while (!frames_.empty()) {
    Frame& top = frames_.back();
    if (!top.pushback.empty()) {
      Token t = std::move(top.pushback.back());
      top.pushback.pop_back();
      return t;
    }
    Token t = top.lexer.next();
    if (t.is(TokenKind::kEof)) {
      frames_.pop_back();
      continue;
    }
    return t;
  }
  return Token{};  // kEof
}

void Preprocessor::pushBack(Token t) {
  // With every file frame already popped (truncated input), the stream is
  // at EOF and the pushed-back token can only be dropped.
  if (frames_.empty()) return;
  frames_.back().pushback.push_back(std::move(t));
}

std::vector<Token> Preprocessor::readRestOfLine(std::uint32_t line) {
  std::vector<Token> tokens;
  const support::FileId file =
      frames_.empty() ? support::FileId{} : frames_.back().lexer.file();
  while (true) {
    Token t = rawNext();
    if (t.is(TokenKind::kEof) || t.location.file != file ||
        t.location.line != line) {
      if (!t.is(TokenKind::kEof)) pushBack(std::move(t));
      return tokens;
    }
    tokens.push_back(std::move(t));
  }
}

void Preprocessor::skipToEndOfLine(std::uint32_t line) {
  (void)readRestOfLine(line);
}

std::vector<Token> Preprocessor::run(support::FileId root) {
  frames_.clear();
  conditionals_.clear();
  frames_.push_back(
      Frame{Lexer(root, sm_.contents(root), diags_),
            directoryOf(sm_.name(root)), {}});

  std::vector<Token> out;
  while (true) {
    Token t = rawNext();
    if (t.is(TokenKind::kEof)) break;
    if (t.is(TokenKind::kHash) && t.at_line_start) {
      handleDirective(t);
      continue;
    }
    if (!active()) continue;
    if (t.is(TokenKind::kIdentifier) && maybeExpand(t)) continue;
    out.push_back(std::move(t));
  }
  if (!conditionals_.empty()) {
    diags_.error({}, "preprocess", "unterminated #if/#ifdef block");
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  out.push_back(eof);
  return out;
}

void Preprocessor::handleDirective(const Token& hash) {
  const std::uint32_t line = hash.location.line;
  Token name = rawNext();
  if (!name.is(TokenKind::kIdentifier) &&
      !name.is(TokenKind::kKwIf) && !name.is(TokenKind::kKwElse)) {
    if (name.location.line == line) skipToEndOfLine(line);
    diags_.error(hash.location, "preprocess", "malformed directive");
    return;
  }
  const std::string directive = name.is(TokenKind::kKwIf)     ? "if"
                                : name.is(TokenKind::kKwElse) ? "else"
                                                              : name.text;

  if (directive == "endif") {
    skipToEndOfLine(line);
    if (conditionals_.empty()) {
      diags_.error(hash.location, "preprocess", "#endif without #if");
    } else {
      conditionals_.pop_back();
    }
    return;
  }
  if (directive == "else") {
    skipToEndOfLine(line);
    if (conditionals_.empty()) {
      diags_.error(hash.location, "preprocess", "#else without #if");
    } else {
      auto& [this_active, taken] = conditionals_.back();
      // Parent must be active for the else branch to possibly activate.
      const bool parent_active =
          std::all_of(conditionals_.begin(), conditionals_.end() - 1,
                      [](const auto& c) { return c.first; });
      this_active = parent_active && !taken;
      taken = taken || this_active;
    }
    return;
  }
  if (directive == "ifdef" || directive == "ifndef") {
    handleIf(line, /*is_ifdef=*/true, directive == "ifndef");
    return;
  }
  if (directive == "if") {
    handleIf(line, /*is_ifdef=*/false, /*negate=*/false);
    return;
  }

  if (!active()) {
    skipToEndOfLine(line);
    return;
  }

  if (directive == "include") {
    handleInclude(line);
  } else if (directive == "define") {
    handleDefine(line);
  } else if (directive == "undef") {
    std::vector<Token> rest = readRestOfLine(line);
    if (rest.size() == 1 && rest[0].is(TokenKind::kIdentifier)) {
      macros_.erase(rest[0].text);
    } else {
      diags_.error(hash.location, "preprocess", "malformed #undef");
    }
  } else if (directive == "pragma") {
    std::vector<Token> rest = readRestOfLine(line);
    if (rest.size() == 1 && rest[0].isIdent("once") && !frames_.empty()) {
      pragma_once_files_.insert(
          std::string(sm_.name(frames_.back().lexer.file())));
    }
  } else {
    skipToEndOfLine(line);
    diags_.error(hash.location, "preprocess",
                 "unsupported directive '#" + directive + "'");
  }
}

void Preprocessor::handleInclude(std::uint32_t line) {
  std::vector<Token> rest = readRestOfLine(line);
  // Accept "file.h" (string literal). Angle-bracket system includes are
  // tolerated and ignored: the analyzer models libc by signature.
  if (rest.size() == 1 && rest[0].is(TokenKind::kStringLiteral)) {
    const std::string& name = rest[0].text;
    std::vector<std::string> candidates;
    if (!frames_.empty()) {
      candidates.push_back(frames_.back().directory + "/" + name);
    }
    for (const std::string& dir : include_dirs_) {
      candidates.push_back(dir + "/" + name);
    }
    for (const std::string& path : candidates) {
      if (pragma_once_files_.contains(path)) return;
      if (std::optional<support::FileId> id = sm_.addFile(path)) {
        if (pragma_once_files_.contains(std::string(sm_.name(*id)))) return;
        frames_.push_back(Frame{Lexer(*id, sm_.contents(*id), diags_),
                                directoryOf(path), {}});
        return;
      }
    }
    diags_.error(rest[0].location, "preprocess",
                 "cannot open include file \"" + name + "\"");
    return;
  }
  // <...> includes arrive as a token soup starting with kLess; skip them.
  if (!rest.empty() && rest[0].is(TokenKind::kLess)) return;
  diags_.error({}, "preprocess", "malformed #include");
}

void Preprocessor::handleDefine(std::uint32_t line) {
  std::vector<Token> rest = readRestOfLine(line);
  if (rest.empty() || !rest[0].is(TokenKind::kIdentifier)) {
    diags_.error({}, "preprocess", "malformed #define");
    return;
  }
  Macro m;
  std::size_t body_start = 1;
  // Function-like iff '(' directly abuts the macro name.
  if (rest.size() > 1 && rest[1].is(TokenKind::kLParen) &&
      rest[1].location.column ==
          rest[0].location.column + rest[0].text.size()) {
    m.function_like = true;
    std::size_t i = 2;
    while (i < rest.size() && !rest[i].is(TokenKind::kRParen)) {
      if (rest[i].is(TokenKind::kIdentifier)) {
        m.params.push_back(rest[i].text);
      } else if (!rest[i].is(TokenKind::kComma)) {
        diags_.error(rest[i].location, "preprocess",
                     "malformed macro parameter list");
        return;
      }
      ++i;
    }
    if (i >= rest.size()) {
      diags_.error(rest[0].location, "preprocess",
                   "unterminated macro parameter list");
      return;
    }
    body_start = i + 1;
  }
  m.body.assign(rest.begin() + static_cast<std::ptrdiff_t>(body_start),
                rest.end());
  macros_[rest[0].text] = std::move(m);
}

void Preprocessor::handleIf(std::uint32_t line, bool is_ifdef, bool negate) {
  std::vector<Token> rest = readRestOfLine(line);
  const bool parent_active = active();
  bool condition = false;
  if (is_ifdef) {
    if (rest.size() == 1 && rest[0].is(TokenKind::kIdentifier)) {
      condition = macros_.contains(rest[0].text);
      if (negate) condition = !condition;
    } else {
      diags_.error({}, "preprocess", "malformed #ifdef/#ifndef");
    }
  } else {
    // #if <int> | #if defined(X) | #if !defined(X)
    std::size_t i = 0;
    bool invert = false;
    if (i < rest.size() && rest[i].is(TokenKind::kBang)) {
      invert = true;
      ++i;
    }
    if (i < rest.size() && rest[i].is(TokenKind::kIntLiteral)) {
      condition = std::stol(rest[i].text) != 0;
    } else if (i + 3 < rest.size() && rest[i].isIdent("defined") &&
               rest[i + 1].is(TokenKind::kLParen) &&
               rest[i + 2].is(TokenKind::kIdentifier) &&
               rest[i + 3].is(TokenKind::kRParen)) {
      condition = macros_.contains(rest[i + 2].text);
    } else {
      diags_.error({}, "preprocess",
                   "unsupported #if expression (use 0/1 or defined(X))");
    }
    if (invert) condition = !condition;
  }
  const bool branch_active = parent_active && condition;
  conditionals_.emplace_back(branch_active, branch_active);
}

bool Preprocessor::maybeExpand(const Token& tok) {
  const auto it = macros_.find(tok.text);
  if (it == macros_.end() ||
      std::find(tok.no_expand.begin(), tok.no_expand.end(), tok.text) !=
          tok.no_expand.end()) {
    return false;
  }
  const Macro& m = it->second;

  std::vector<Token> substituted;
  if (!m.function_like) {
    substituted = m.body;
    for (Token& t : substituted) t.no_expand = tok.no_expand;
  } else {
    Token lparen = rawNext();
    if (!lparen.is(TokenKind::kLParen)) {
      pushBack(std::move(lparen));
      return false;  // function-like macro name without call: plain ident
    }
    // Collect comma-separated argument token lists at depth 1.
    std::vector<std::vector<Token>> args(1);
    int depth = 1;
    while (depth > 0) {
      Token t = rawNext();
      if (t.is(TokenKind::kEof)) {
        diags_.error(tok.location, "preprocess",
                     "unterminated macro invocation of '" + tok.text + "'");
        return true;
      }
      if (t.is(TokenKind::kLParen)) ++depth;
      if (t.is(TokenKind::kRParen)) {
        --depth;
        if (depth == 0) break;
      }
      if (t.is(TokenKind::kComma) && depth == 1) {
        args.emplace_back();
        continue;
      }
      args.back().push_back(std::move(t));
    }
    if (args.size() == 1 && args[0].empty() && m.params.empty()) args.clear();
    if (args.size() != m.params.size()) {
      diags_.error(tok.location, "preprocess",
                   "macro '" + tok.text + "' expects " +
                       std::to_string(m.params.size()) + " arguments");
      return true;
    }
    for (const Token& body_tok : m.body) {
      const auto param = std::find(m.params.begin(), m.params.end(),
                                   body_tok.text);
      if (body_tok.is(TokenKind::kIdentifier) && param != m.params.end()) {
        // Argument tokens keep their own paint (they came from the call
        // site, already scanned for the enclosing macros).
        const auto& arg = args[static_cast<std::size_t>(
            param - m.params.begin())];
        substituted.insert(substituted.end(), arg.begin(), arg.end());
      } else {
        Token t = body_tok;
        t.no_expand = tok.no_expand;
        substituted.push_back(std::move(t));
      }
    }
  }
  // Paint body-derived tokens with this macro's name, stamp the use-site
  // location, and push everything back for the main loop to rescan.
  for (Token& t : substituted) {
    t.location = tok.location;
    if (std::find(t.no_expand.begin(), t.no_expand.end(), tok.text) ==
        t.no_expand.end()) {
      t.no_expand.push_back(tok.text);
    }
  }
  for (auto it2 = substituted.rbegin(); it2 != substituted.rend(); ++it2) {
    pushBack(std::move(*it2));
  }
  return true;
}

}  // namespace safeflow::cfront
