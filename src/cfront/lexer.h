// Hand-written lexer for the C subset. One Lexer instance scans one file
// buffer; the preprocessor stacks lexers to implement #include.
#pragma once

#include <string_view>

#include "cfront/token.h"
#include "support/diagnostics.h"
#include "support/source_location.h"

namespace safeflow::cfront {

class Lexer {
 public:
  Lexer(support::FileId file, std::string_view buffer,
        support::DiagnosticEngine& diags);

  /// Returns the next token, skipping whitespace and non-annotation
  /// comments. At end of buffer, returns kEof forever.
  Token next();

  [[nodiscard]] support::FileId file() const { return file_; }

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool atEnd() const { return pos_ >= buffer_.size(); }
  [[nodiscard]] support::SourceLocation here() const;

  Token makeToken(TokenKind kind, support::SourceLocation loc,
                  std::string text = {});
  Token lexIdentifier(support::SourceLocation loc);
  Token lexNumber(support::SourceLocation loc);
  Token lexCharLiteral(support::SourceLocation loc);
  Token lexStringLiteral(support::SourceLocation loc);
  /// Called after "/*" is consumed; either returns an annotation token or
  /// skips the comment and returns false via `out` being untouched.
  bool lexBlockComment(support::SourceLocation loc, Token& out);

  support::FileId file_;
  std::string_view buffer_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
  bool at_line_start_ = true;
};

}  // namespace safeflow::cfront
