#include "safeflow/daemon.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include "safeflow/driver.h"
#include "safeflow/supervisor.h"
#include "support/cache.h"
#include "support/flight_recorder.h"
#include "support/io_faults.h"
#include "support/limits.h"
#include "support/log.h"
#include "support/unix_socket.h"

namespace safeflow {

namespace {

using Clock = std::chrono::steady_clock;

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string errorResponse(const std::string& message) {
  return "{\"safeflowd\": 1, \"status\": \"error\", \"message\": \"" +
         jsonEscape(message) + "\"}\n";
}

/// Current resident set in bytes via /proc/self/statm (0 off-Linux or
/// on any read failure — the RSS gate then never sheds, which is the
/// safe default).
std::uint64_t residentBytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return 0;
  std::uint64_t total_pages = 0, resident_pages = 0;
  statm >> total_pages >> resident_pages;
  if (!statm) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

/// Open descriptors of this process via /proc/self/fd (0 off-Linux or
/// on failure — the fd axis then never reads as pressured).
std::uint64_t countOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::uint64_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  // ".", "..", and the directory's own fd are not real load.
  return count > 3 ? count - 3 : 0;
}

/// Free bytes on the filesystem holding `path`; false when statvfs
/// fails (unknown free space must not read as pressure).
bool diskFreeBytes(const std::string& path, std::uint64_t* out) {
  struct statvfs vfs{};
  if (::statvfs(path.c_str(), &vfs) != 0) return false;
  *out = static_cast<std::uint64_t>(vfs.f_bavail) * vfs.f_frsize;
  return true;
}

const char* pressureLevelName(int level) {
  switch (level) {
    case 0: return "nominal";
    case 1: return "elevated";
    case 2: return "shedding";
    case 3: return "critical";
    case 4: return "draining";
  }
  return "?";
}

/// Server-side validation of the request's analysis flags. Only the
/// cache-key-relevant passthrough flags the CLI would forward to
/// workers are accepted — scheduling and observability flags are the
/// daemon's own configuration, and anything unknown is rejected rather
/// than spawned into a worker argv. Fills `include_dirs` (the cache
/// manager resolves header closures with it) and `time_budget_seconds`
/// (retry tightening parity with the one-shot CLI).
bool validateFlags(const std::vector<std::string>& flags,
                   std::vector<std::string>* include_dirs,
                   double* time_budget_seconds, std::string* error) {
  const auto unsignedArg = [](const std::string& v) {
    if (v.empty()) return false;
    char* end = nullptr;
    (void)std::strtoull(v.c_str(), &end, 10);
    return end != v.c_str() && *end == '\0';
  };
  for (std::size_t i = 0; i < flags.size(); ++i) {
    const std::string& flag = flags[i];
    const bool has_arg = i + 1 < flags.size();
    if (flag == "-I" || flag == "-D") {
      if (!has_arg) {
        *error = "flag '" + flag + "' is missing its argument";
        return false;
      }
      if (flag == "-I") include_dirs->push_back(flags[i + 1]);
      ++i;
    } else if (flag == "--mode=summaries" || flag == "--mode=call-strings" ||
               flag == "--no-control-deps" || flag == "--ranges" ||
               flag == "--no-ranges" || flag == "--alias=andersen" ||
               flag == "--alias=legacy" || flag == "--kill-critical") {
      // No argument.
    } else if (flag == "--time-budget") {
      if (!has_arg ||
          !support::parseDuration(flags[i + 1], time_budget_seconds)) {
        *error = "invalid --time-budget";
        return false;
      }
      ++i;
    } else if (flag == "--step-budget" || flag == "--max-depth") {
      if (!has_arg || !unsignedArg(flags[i + 1])) {
        *error = "invalid " + flag;
        return false;
      }
      ++i;
    } else {
      *error = "unsupported analysis flag '" + flag + "'";
      return false;
    }
  }
  return true;
}

bool stringArray(const support::json::Value& doc, const char* member,
                 std::vector<std::string>* out) {
  const support::json::Value* arr = doc.find(member);
  if (arr == nullptr || !arr->isArray()) return false;
  for (const support::json::Value& v : arr->array) {
    if (!v.isString()) return false;
    out->push_back(v.string_value);
  }
  return true;
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  if (options_.jobs == 0) options_.jobs = 1;
  if (options_.max_inflight == 0) options_.max_inflight = 1;
}

Daemon::~Daemon() {
  if (pressure_thread_.joinable()) {
    stopping_.store(true, std::memory_order_release);
    pressure_thread_.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

bool Daemon::start(std::string* error) {
  // Pre-register the daemon's own counters so the status document and
  // --metrics-out always expose them — a zero shed count is a statement
  // ("no load was shed"), not a missing series.
  for (const char* name :
       {"daemon.requests", "daemon.analyze", "daemon.coalesced",
        "daemon.shed", "daemon.deadline_expired", "daemon.protocol_errors",
        "daemon.disconnects", "daemon.pressure.transitions"}) {
    metrics_.counter(name).add(0);
  }
  metrics_.gauge("daemon.queue_depth").set(0.0);
  metrics_.gauge("daemon.in_flight").set(0.0);
  metrics_.gauge("daemon.pressure.level").set(0.0);
  if (::pipe2(stop_pipe_, O_CLOEXEC) != 0) {
    if (error != nullptr) {
      *error = std::string("pipe: ") + std::strerror(errno);
    }
    return false;
  }
  bool was_stale = false;
  listen_fd_ = support::listenUnixSocket(options_.socket_path, 64, error,
                                         &was_stale);
  if (listen_fd_ < 0) return false;
  if (was_stale) {
    metrics_.counter("daemon.stale_socket_swept").add();
    SAFEFLOW_LOG(support::LogLevel::kNote, "daemon",
                 "note: swept stale socket from a crashed daemon",
                 {{"path", options_.socket_path}});
  }
  // Crash recovery half two: age out cache temp files a SIGKILLed
  // predecessor abandoned mid-store, and purge entries whose envelopes
  // no longer verify (torn by a crash racing an unsynced rename). The
  // sweep runs once here; per-request CacheManagers skip their own
  // verify-on-open pass so a busy daemon does not rescan the whole dir
  // on every request.
  if (options_.cache.enabled) {
    support::DiskCache disk({options_.cache.dir, options_.cache.max_bytes});
    const std::uint64_t swept = disk.sweepStrayTemps();
    if (swept > 0) metrics_.counter("daemon.cache_temps_swept").add(swept);
    std::vector<std::string> purged;
    const std::uint64_t torn = disk.verifyEntries(&purged);
    if (torn > 0) {
      metrics_.counter("cache.torn_entries_purged").add(torn);
      support::flightRecord("daemon",
                            "purged " + std::to_string(torn) +
                                " torn cache entries at startup");
      for (const std::string& path : purged) {
        SAFEFLOW_LOG(support::LogLevel::kWarn, "daemon",
                     "warning: cache entry is corrupt (torn or truncated "
                     "on disk); purged at startup",
                     {{"path", path}});
      }
    }
    // Same crash-recovery sweep for the per-function summary store the
    // workers share under the cache dir, so every request starts from a
    // verified store instead of each worker discovering torn entries
    // lazily.
    support::DiskCache summaries({options_.cache.dir + "/summaries",
                                  options_.cache.max_bytes});
    const std::uint64_t sum_swept =
        summaries.verifyEntries() + summaries.sweepStrayTemps();
    if (sum_swept > 0) {
      metrics_.counter("summaries.torn_entries_purged").add(sum_swept);
      SAFEFLOW_LOG(support::LogLevel::kWarn, "daemon",
                   "purged torn summary entries at startup; affected "
                   "functions fall back to cold analysis",
                   {{"purged", std::to_string(sum_swept)}});
    }
    metrics_.gauge("summaries.store_bytes")
        .set(static_cast<double>(summaries.totalBytes()));
  }
  SAFEFLOW_LOG(support::LogLevel::kNote, "daemon", "listening",
               {{"socket", options_.socket_path},
                {"jobs", std::to_string(options_.jobs)},
                {"cache_dir",
                 options_.cache.enabled ? options_.cache.dir : "(off)"}});
  return true;
}

void Daemon::requestStop() {
  // Async-signal-safe: one atomic store and one write(2).
  stopping_.store(true, std::memory_order_release);
  const char byte = 's';
  (void)!::write(stop_pipe_[1], &byte, 1);
}

int Daemon::serve() {
  if (options_.pressure_interval_seconds > 0.0) {
    pressure_thread_ = std::thread([this] { pressureWatchdog(); });
  }
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                            {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // requestStop woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++connections_;
    }
    std::thread([this, client] {
      handleConnection(client);
      const std::lock_guard<std::mutex> lock(mu_);
      --connections_;
      connections_cv_.notify_all();
    }).detach();
  }

  // Drain: stop accepting (close + unlink so new clients fall back to
  // in-process analysis immediately), let in-flight requests finish,
  // wake queued leaders so they answer `draining`, flush metrics.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  {
    std::unique_lock<std::mutex> lock(mu_);
    slots_cv_.notify_all();
    connections_cv_.wait(lock, [this] { return connections_ == 0; });
  }
  if (pressure_thread_.joinable()) pressure_thread_.join();
  flushMetrics();
  SAFEFLOW_LOG(support::LogLevel::kNote, "daemon", "drained; exiting",
               {{"socket", options_.socket_path}});
  return 0;
}

void Daemon::pressureWatchdog() {
  int sustained_critical = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    (void)samplePressure(&sustained_critical);
    // Sleep in short slices so a drain request is honored promptly even
    // under a long sampling interval.
    double remaining = options_.pressure_interval_seconds;
    while (remaining > 0.0 && !stopping_.load(std::memory_order_acquire)) {
      const double slice = std::min(remaining, 0.05);
      std::this_thread::sleep_for(std::chrono::duration<double>(slice));
      remaining -= slice;
    }
  }
}

int Daemon::samplePressure(int* sustained_critical) {
  // Saturated samples before critical escalates to drain: long enough
  // to ride out one heavy request completing, short enough that a
  // genuinely wedged process exits before the OOM killer chooses for
  // it (8 samples = 8s at the default interval).
  constexpr int kSustainedCriticalSamples = 8;

  const std::uint64_t rss = residentBytes();
  const std::uint64_t fds = countOpenFds();
  std::uint64_t disk_free = 0;
  bool have_disk = false;
  if (options_.min_disk_free_mb > 0 && options_.cache.enabled) {
    have_disk = diskFreeBytes(options_.cache.dir, &disk_free);
  }

  // Ladder level = worst per-resource usage fraction. Each axis is
  // opt-in: an unset budget contributes nothing.
  double worst = 0.0;
  const char* axis = "none";
  if (options_.max_rss_mb > 0 && rss > 0) {
    const double frac = static_cast<double>(rss) /
                        static_cast<double>(options_.max_rss_mb << 20);
    if (frac > worst) { worst = frac; axis = "rss"; }
  }
  if (options_.max_open_fds > 0 && fds > 0) {
    const double frac = static_cast<double>(fds) /
                        static_cast<double>(options_.max_open_fds);
    if (frac > worst) { worst = frac; axis = "fds"; }
  }
  if (have_disk) {
    // Free space below the floor is full saturation; at twice the floor
    // the axis reads half-used.
    const double floor_bytes =
        static_cast<double>(options_.min_disk_free_mb) * 1048576.0;
    const double frac =
        floor_bytes / std::max(static_cast<double>(disk_free), 1.0);
    if (frac > worst) { worst = frac; axis = "disk"; }
  }

  metrics_.gauge("daemon.pressure.rss_mb")
      .set(static_cast<double>(rss) / 1048576.0);
  metrics_.gauge("daemon.pressure.open_fds").set(static_cast<double>(fds));
  if (have_disk) {
    metrics_.gauge("daemon.pressure.disk_free_mb")
        .set(static_cast<double>(disk_free) / 1048576.0);
  }

  int level = worst >= 1.0 ? 3 : worst >= 0.90 ? 2 : worst >= 0.75 ? 1 : 0;
  if (level >= 3) {
    ++*sustained_critical;
  } else {
    *sustained_critical = 0;
  }
  if (*sustained_critical >= kSustainedCriticalSamples) level = 4;

  const int old_level = pressure_level_.load(std::memory_order_relaxed);
  if (level == old_level) return level;

  pressure_level_.store(level, std::memory_order_relaxed);
  metrics_.gauge("daemon.pressure.level").set(static_cast<double>(level));
  metrics_.counter("daemon.pressure.transitions").add();
  char frac_text[32];
  std::snprintf(frac_text, sizeof frac_text, "%.2f", worst);
  support::flightRecord(
      "pressure", std::string(pressureLevelName(old_level)) + " -> " +
                      pressureLevelName(level) + " (" + axis + " at " +
                      frac_text + ")");
  SAFEFLOW_LOG(level > old_level ? support::LogLevel::kWarn
                                 : support::LogLevel::kNote,
               "daemon", "pressure level changed",
               {{"from", pressureLevelName(old_level)},
                {"to", pressureLevelName(level)},
                {"axis", axis},
                {"usage", frac_text}});

  // Entering critical: give back disk before anything else — the cache
  // is the one resource the daemon can shed without failing requests.
  if (level >= 3 && old_level < 3 && options_.cache.enabled &&
      options_.cache.max_bytes > 0) {
    support::DiskCache disk({options_.cache.dir, options_.cache.max_bytes});
    const std::uint64_t evicted =
        disk.evictToBytes(options_.cache.max_bytes / 2);
    metrics_.counter("daemon.pressure.cache_evicted").add(evicted);
    if (evicted > 0) {
      SAFEFLOW_LOG(support::LogLevel::kNote, "daemon",
                   "pressure eviction shrank the disk cache",
                   {{"entries", std::to_string(evicted)}});
    }
  }
  if (level == 4) {
    SAFEFLOW_LOG(support::LogLevel::kWarn, "daemon",
                 "resource pressure stayed critical; draining", {});
    requestStop();
  }
  return level;
}

void Daemon::handleConnection(int fd) {
  std::string line;
  const support::LineIo io = support::readLine(
      fd, &line, options_.max_request_bytes, options_.io_timeout_seconds);
  metrics_.counter("daemon.requests").add();
  std::string response;
  switch (io) {
    case support::LineIo::kOk: {
      bool fatal_parse = false;
      response = handleRequest(line, &fatal_parse);
      break;
    }
    case support::LineIo::kEof:
      // Mid-request disconnect: nobody to answer.
      metrics_.counter("daemon.disconnects").add();
      ::close(fd);
      return;
    case support::LineIo::kOversized:
      metrics_.counter("daemon.protocol_errors").add();
      response = errorResponse("request exceeds " +
                               std::to_string(options_.max_request_bytes) +
                               " bytes");
      break;
    case support::LineIo::kTimeout:
      metrics_.counter("daemon.protocol_errors").add();
      response = errorResponse("request not received within " +
                               std::to_string(options_.io_timeout_seconds) +
                               "s");
      break;
    case support::LineIo::kError:
      metrics_.counter("daemon.disconnects").add();
      ::close(fd);
      return;
  }
  if (!support::writeAll(fd, response, "daemon.socket")) {
    // Client went away (or the chaos harness failed the write); either
    // way the client sees a truncated line it must discard, never a
    // plausible-but-wrong response.
    metrics_.counter("daemon.disconnects").add();
  }
  ::close(fd);
}

std::string Daemon::handleRequest(const std::string& line,
                                  bool* /*fatal_parse*/) {
  support::json::Value doc;
  std::string parse_error;
  if (!support::json::parse(line, &doc, &parse_error) || !doc.isObject()) {
    metrics_.counter("daemon.protocol_errors").add();
    return errorResponse("malformed request: " + parse_error);
  }
  if (doc.memberUint("safeflowd") != 1) {
    metrics_.counter("daemon.protocol_errors").add();
    return errorResponse("unsupported or missing protocol version "
                         "(expected \"safeflowd\": 1)");
  }
  const std::string op = doc.memberString("op");
  if (op == "status") return statusResponse();
  if (op == "shutdown") {
    SAFEFLOW_LOG(support::LogLevel::kNote, "daemon",
                 "shutdown requested by client", {});
    requestStop();
    return "{\"safeflowd\": 1, \"status\": \"ok\", \"draining\": true}\n";
  }
  if (op == "analyze") return handleAnalyze(doc);
  metrics_.counter("daemon.protocol_errors").add();
  return errorResponse("unknown op '" + op + "'");
}

std::string Daemon::busyResponse() {
  metrics_.counter("daemon.shed").add();
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    depth = queued_;
  }
  std::ostringstream out;
  out << "{\"safeflowd\": 1, \"status\": \"busy\", \"retry_after_ms\": "
      << static_cast<std::uint64_t>(options_.retry_after_seconds * 1000.0)
      << ", \"queue_depth\": " << depth << "}\n";
  return out.str();
}

std::string Daemon::handleAnalyze(const support::json::Value& request) {
  const Clock::time_point arrival = Clock::now();

  std::vector<std::string> files;
  if (!stringArray(request, "files", &files) || files.empty()) {
    metrics_.counter("daemon.protocol_errors").add();
    return errorResponse("analyze requires a non-empty \"files\" array "
                         "of strings");
  }
  for (const std::string& f : files) {
    if (f.empty()) {
      metrics_.counter("daemon.protocol_errors").add();
      return errorResponse("empty path in \"files\"");
    }
  }
  std::vector<std::string> flags;
  if (request.find("flags") != nullptr &&
      !stringArray(request, "flags", &flags)) {
    metrics_.counter("daemon.protocol_errors").add();
    return errorResponse("\"flags\" must be an array of strings");
  }
  std::vector<std::string> include_dirs;
  double time_budget_seconds = 0.0;
  std::string flag_error;
  if (!validateFlags(flags, &include_dirs, &time_budget_seconds,
                     &flag_error)) {
    metrics_.counter("daemon.protocol_errors").add();
    return errorResponse(flag_error);
  }
  const support::json::Value* json_member = request.find("json");
  const support::json::Value* quiet_member = request.find("quiet");
  const bool json = json_member != nullptr && json_member->boolOr(false);
  const bool quiet = quiet_member != nullptr && quiet_member->boolOr(false);
  double deadline_seconds = options_.default_deadline_seconds;
  if (const support::json::Value* dl = request.find("deadline_ms");
      dl != nullptr && dl->isNumber() && dl->number_value > 0) {
    deadline_seconds = dl->number_value / 1000.0;
  }

  metrics_.counter("daemon.analyze").add();

  if (stopping_.load(std::memory_order_acquire)) {
    return "{\"safeflowd\": 1, \"status\": \"draining\"}\n";
  }

  // Admission control: shed before the queue or the process can grow
  // without bound. A structured `busy` with a retry hint beats an
  // unbounded latency cliff.
  if (options_.max_rss_mb > 0 &&
      residentBytes() > options_.max_rss_mb << 20) {
    return busyResponse();
  }
  // Pressure ladder, level 2+: the watchdog found some resource within
  // 10% of its ceiling — shed new work until it recedes.
  if (pressure_level_.load(std::memory_order_relaxed) >= 2) {
    return busyResponse();
  }

  // Coalescing: identical concurrent requests share one analysis. The
  // key is the same identity the cache uses (files + flags) plus the
  // rendering switches, so "byte-identical response" is literal. The
  // deadline is part of the identity too: a tight-deadline probe must
  // never become the leader for a patient request and poison every
  // waiter with its own expiry.
  support::Fnv1a hasher;
  for (const std::string& f : files) {
    hasher.update("file:");
    hasher.update(f);
    hasher.update("\n");
  }
  for (const std::string& f : flags) {
    hasher.update("flag:");
    hasher.update(f);
    hasher.update("\n");
  }
  hasher.update(json ? "json" : "text");
  hasher.update(quiet ? "+quiet" : "");
  hasher.update("deadline:");
  hasher.update(std::to_string(deadline_seconds));
  const std::string key = hasher.hex();

  std::shared_ptr<Job> job;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (const auto it = jobs_.find(key); it != jobs_.end()) {
      // Waiter: ride the leader's analysis, answer with its bytes.
      job = it->second;
      metrics_.counter("daemon.coalesced").add();
      lock.unlock();
      std::unique_lock<std::mutex> job_lock(job->mu);
      job->cv.wait(job_lock, [&job] { return job->done; });
      return job->response;
    }
    // Shed only requests that would actually have to wait: total
    // occupancy (running + admitted-but-waiting) is bounded by
    // slots + waiting room, so --max-queue 0 means "no waiting room",
    // not "no service". Pressure level 1 halves the waiting room —
    // the first, gentlest rung of the degradation ladder.
    const std::size_t waiting_room =
        pressure_level_.load(std::memory_order_relaxed) >= 1
            ? options_.max_queue / 2
            : options_.max_queue;
    if (in_flight_ + queued_ >= options_.max_inflight + waiting_room) {
      lock.unlock();
      return busyResponse();
    }
    job = std::make_shared<Job>();
    jobs_.emplace(key, job);
    ++queued_;
    metrics_.gauge("daemon.queue_depth").set(static_cast<double>(queued_));
  }

  // Leader: wait for an in-flight slot, run, publish to every waiter.
  std::string response;
  {
    std::unique_lock<std::mutex> lock(mu_);
    slots_cv_.wait(lock, [this] {
      return in_flight_ < options_.max_inflight ||
             stopping_.load(std::memory_order_acquire);
    });
    --queued_;
    metrics_.gauge("daemon.queue_depth").set(static_cast<double>(queued_));
    if (stopping_.load(std::memory_order_acquire)) {
      response = "{\"safeflowd\": 1, \"status\": \"draining\"}\n";
    } else {
      ++in_flight_;
      metrics_.gauge("daemon.in_flight")
          .set(static_cast<double>(in_flight_));
    }
  }
  if (response.empty()) {
    const double waited =
        std::chrono::duration<double>(Clock::now() - arrival).count();
    const double remaining = deadline_seconds - waited;
    if (remaining <= 0.0) {
      metrics_.counter("daemon.deadline_expired").add();
      response = errorResponse("deadline expired before analysis started");
    } else {
      response = runAnalysis(files, flags, json, quiet, remaining);
      // The retry-tightening base, for parity with the one-shot CLI.
      (void)time_budget_seconds;
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      metrics_.gauge("daemon.in_flight")
          .set(static_cast<double>(in_flight_));
    }
    slots_cv_.notify_all();
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    jobs_.erase(key);
  }
  {
    const std::lock_guard<std::mutex> job_lock(job->mu);
    job->response = response;
    job->done = true;
  }
  job->cv.notify_all();
  return response;
}

std::string Daemon::runAnalysis(const std::vector<std::string>& files,
                                const std::vector<std::string>& flags,
                                bool json, bool quiet,
                                double deadline_seconds) {
  // Fresh registry per request so the counters inside the response (and
  // an embedded --json stats document) describe this request alone,
  // exactly like a one-shot CLI invocation's registry would.
  support::MetricsRegistry registry;

  std::vector<std::string> include_dirs;
  double time_budget_seconds = 0.0;
  std::string ignored;
  validateFlags(flags, &include_dirs, &time_budget_seconds, &ignored);

  CacheOptions cache_options = options_.cache;
  cache_options.include_dirs = include_dirs;
  cache_options.analysis_flags = flags;
  // start() already ran the verify-and-purge sweep once; rescanning the
  // whole cache dir per request would turn every analyze into O(cache).
  cache_options.verify_on_open = false;
  CacheManager cache(cache_options, &registry);

  SupervisorOptions sup;
  sup.jobs = options_.jobs;
  sup.max_retries = options_.max_retries;
  sup.worker_exe = options_.worker_exe;
  sup.worker_args = flags;
  if (options_.cache.enabled) {
    // Workers of every request share one on-disk summary store next to
    // the TU cache, so a function analyzed for one client is spliced
    // for the next. Appended here, not taken from the request flags:
    // the store location is daemon policy, stays outside the
    // validateFlags whitelist, and must not perturb the TU cache key.
    sup.worker_args.push_back("--summaries-dir");
    sup.worker_args.push_back(options_.cache.dir + "/summaries");
  }
  sup.worker_stderr_cap = options_.worker_stderr_cap;
  sup.base_time_budget_seconds = time_budget_seconds;
  // The request deadline is inherited into the worker watchdog: no
  // attempt may outlive what the client is willing to wait for.
  sup.worker_timeout_seconds =
      options_.worker_timeout_seconds > 0.0
          ? std::min(options_.worker_timeout_seconds, deadline_seconds)
          : deadline_seconds;
  if (cache.enabled()) sup.cache = &cache;

  support::flightRecord("daemon", "analyze " + files.front() +
                                      (files.size() > 1 ? " +" : ""));
  Supervisor supervisor(sup, &registry);
  MergedReport merged = supervisor.run(files);
  merged.stats.cache_disabled_reason = cache.disabledReason();
  const RenderedRun rendered = renderMergedRun(merged, json, quiet);

  const std::uint64_t cache_hits = registry.counterValue("cache.hits");
  const std::uint64_t workers =
      registry.counterValue("supervisor.workers_spawned");

  // Fold the request's counters into the daemon-level registry so
  // `status` exposes fleet-wide totals across all clients.
  const auto snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    metrics_.counter(name).add(value);
  }

  std::ostringstream out;
  out << "{\"safeflowd\": 1, \"status\": \"ok\", \"exit_code\": "
      << rendered.exit_code << ", \"cache_hits\": " << cache_hits
      << ", \"workers_spawned\": " << workers
      << ", \"worker_failures\": " << merged.worker_failures.size()
      << ", \"stdout\": \"" << jsonEscape(rendered.stdout_text)
      << "\", \"stderr\": \"" << jsonEscape(rendered.stderr_text)
      << "\"}\n";
  return out.str();
}

std::string Daemon::statusResponse() {
  std::size_t queued = 0, in_flight = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queued = queued_;
    in_flight = in_flight_;
  }
  const auto snap = metrics_.snapshot();
  std::ostringstream out;
  out << "{\"safeflowd\": 1, \"status\": \"ok\", \"version\": \""
      << jsonEscape(kAnalyzerVersion) << "\", \"pid\": " << ::getpid()
      << ", \"queue_depth\": " << queued << ", \"in_flight\": " << in_flight
      << ", \"pressure_level\": "
      << pressure_level_.load(std::memory_order_relaxed)
      << ", \"draining\": "
      << (stopping_.load(std::memory_order_acquire) ? "true" : "false")
      << ", \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\""
        << jsonEscape(snap.counters[i].first)
        << "\": " << snap.counters[i].second;
  }
  out << "}, \"gauges\": {";
  char num[64];
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    std::snprintf(num, sizeof num, "%.9g", snap.gauges[i].second);
    out << (i == 0 ? "" : ", ") << "\"" << jsonEscape(snap.gauges[i].first)
        << "\": " << num;
  }
  out << "}}\n";
  return out.str();
}

void Daemon::flushMetrics() {
  if (options_.metrics_out_path.empty()) return;
  SafeFlowStats stats;
  foldRegistrySnapshot(metrics_, &stats);
  stats.resource = support::sampleResourceUsage();
  const support::io::IoStatus status = support::io::writeFile(
      options_.metrics_out_path, stats.renderPrometheus(), "metrics.out");
  if (!status.ok) {
    // The failed file is already unlinked: scrapers see stale-or-absent
    // metrics, never a truncated exposition.
    SAFEFLOW_LOG(support::LogLevel::kWarn, "daemon",
                 "warning: metrics flush failed",
                 {{"error", status.message}});
  }
}

}  // namespace safeflow
