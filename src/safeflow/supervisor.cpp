#include "safeflow/supervisor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "safeflow/cache_manager.h"
#include "safeflow/run_journal.h"
#include "support/json.h"
#include "support/log.h"
#include "support/subprocess.h"

namespace safeflow {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string tail(const std::string& text, std::size_t max_bytes = 2000) {
  if (text.size() <= max_bytes) return text;
  return "..." + text.substr(text.size() - max_bytes);
}

}  // namespace

std::size_t MergedReport::dataErrorCount() const {
  return static_cast<std::size_t>(std::count_if(
      errors.begin(), errors.end(), [](const Error& e) { return e.data; }));
}

std::size_t MergedReport::controlErrorCount() const {
  return errors.size() - dataErrorCount();
}

Supervisor::Supervisor(SupervisorOptions options,
                       support::MetricsRegistry* metrics)
    : options_(std::move(options)), metrics_(metrics) {
  if (options_.jobs == 0) options_.jobs = 1;
}

void Supervisor::analyzeShard(std::size_t shard_index,
                              const std::string& file,
                              WorkerOutcome* result) {
  const auto shard_start = std::chrono::steady_clock::now();
  std::size_t shard_span = 0;
  if (options_.trace != nullptr) {
    shard_span = options_.trace->beginSpan("supervisor.shard");
    options_.trace->setArg(shard_span, "file", file);
  }
  // Close the shard span and record the shard-latency histogram on
  // every exit path.
  struct ShardScope {
    Supervisor* self;
    const std::chrono::steady_clock::time_point start;
    const std::size_t span;
    ~ShardScope() {
      self->metrics_->duration("supervisor.shard_seconds")
          .record(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count());
      if (self->options_.trace != nullptr) {
        self->options_.trace->endSpan(span);
      }
    }
  } scope{this, shard_start, shard_span};

  // The supervisor is being terminated (SIGTERM/SIGINT forwarded by
  // installTerminationForwarding): do not start new shards; the pending
  // ones are reported as interrupted failures so the merged report
  // never silently omits a file.
  if (support::terminationRequested()) {
    result->failure_reason = "interrupted";
    return;
  }

  // A journaled finished shard is replayed instead of re-analyzed: the
  // interrupted run already paid for it. The replayed document joins
  // the input-order merge like a live one; from_cache marks it so the
  // stale telemetry epoch is not stitched into this run's trace.
  if (options_.journal != nullptr) {
    if (const RunJournal::Entry* done =
            options_.journal->finished(shard_index, file)) {
      support::json::Value doc;
      std::string err;
      if (support::json::parse(done->stdout_text, &doc, &err) &&
          doc.isObject()) {
        metrics_->counter("supervisor.shards_resumed_skipped").add();
        support::flightRecord("journal", "resume skip " + file);
        SAFEFLOW_LOG(support::LogLevel::kInfo, "supervisor",
                     "resuming shard from run journal", {{"file", file}});
        result->accepted = true;
        result->from_cache = true;
        result->report = std::move(doc);
        result->exit_code = done->exit_code;
        result->attempts = done->attempts;
        result->stderr_text = done->stderr_text;
        return;
      }
    }
  }

  CacheManager* cache =
      options_.cache != nullptr && options_.cache->enabled()
          ? options_.cache
          : nullptr;
  std::string key;
  if (cache != nullptr) {
    key = cache->keyFor({file});
    std::size_t probe_span = 0;
    if (options_.trace != nullptr) {
      probe_span = options_.trace->beginSpan("supervisor.cache_probe");
      options_.trace->setArg(probe_span, "key", key);
    }
    std::optional<CachedResult> hit = cache->lookup(key);
    if (options_.trace != nullptr) {
      options_.trace->setArg(probe_span, "hit", hit ? "true" : "false");
      options_.trace->endSpan(probe_span);
    }
    if (hit) {
      // Cache hit: no worker is spawned at all. The cached document
      // joins the input-order merge exactly like a live shard would.
      result->accepted = true;
      result->from_cache = true;
      result->report = std::move(hit->report);
      result->exit_code = hit->exit_code;
      result->stderr_text = std::move(hit->stderr_text);
      return;
    }
  }
  runShard(file, result);
  // Journal live accepted outcomes as they complete, so a killed run
  // resumes from here. Cache hits took the early return above: the
  // cache already persists them, and replaying a cache probe is
  // deterministic anyway.
  if (options_.journal != nullptr && result->accepted) {
    options_.journal->append(shard_index, file, result->exit_code,
                             result->attempts, result->raw_stdout,
                             result->stderr_text);
  }
  // Only first-attempt successes are stored: a retried attempt ran with
  // a tightened --time-budget, i.e. a different effective configuration
  // whose (possibly degraded) report must not be replayed for the
  // original one.
  if (cache != nullptr && result->accepted && result->attempts == 1) {
    cache->store(key, result->raw_stdout, result->exit_code,
                 result->stderr_text);
  }
}

void Supervisor::runShard(const std::string& file, WorkerOutcome* result) {
  const int max_attempts = 1 + std::max(0, options_.max_retries);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (support::terminationRequested()) {
      // Never retry (or even start an attempt) once the supervisor has
      // been told to die: the forwarded SIGTERM already killed the
      // previous attempt's worker.
      if (result->failure_reason.empty()) {
        result->failure_reason = "interrupted";
      }
      return;
    }
    result->attempts = attempt;
    if (attempt > 1) {
      // Exponential backoff before the retry (first retry waits the
      // base, each further retry doubles it).
      const double wait =
          options_.backoff_base_seconds * std::ldexp(1.0, attempt - 2);
      if (wait > 0.0) {
        metrics_->counter("supervisor.backoff_waits").add();
        std::size_t backoff_span = 0;
        if (options_.trace != nullptr) {
          backoff_span = options_.trace->beginSpan("supervisor.backoff");
          options_.trace->setArg(backoff_span, "file", file);
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
        if (options_.trace != nullptr) {
          options_.trace->endSpan(backoff_span);
        }
      }
      metrics_->counter("supervisor.workers_retried").add();
      SAFEFLOW_LOG(support::LogLevel::kInfo, "supervisor", "retrying shard",
                   {{"file", file},
                    {"attempt", std::to_string(attempt)},
                    {"previous_failure", result->failure_reason}});
    }

    std::vector<std::string> argv;
    argv.reserve(options_.worker_args.size() + 4);
    argv.push_back(options_.worker_exe);
    argv.push_back("--worker");
    argv.insert(argv.end(), options_.worker_args.begin(),
                options_.worker_args.end());
    if (attempt > 1) {
      // Tighten the analysis budget on retries: if the worker died or
      // hung, the productive outcome is a conservative degraded report,
      // not a second identical death. Last --time-budget wins in the
      // worker's CLI parse, so appending overrides the original.
      double base = options_.base_time_budget_seconds;
      if (base <= 0.0 && options_.worker_timeout_seconds > 0.0) {
        base = options_.worker_timeout_seconds * 0.5;
      }
      if (base > 0.0) {
        const double tightened =
            base * std::pow(options_.retry_budget_factor, attempt - 1);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", tightened);
        argv.emplace_back("--time-budget");
        argv.emplace_back(buf);
      }
    }
    argv.push_back(file);

    support::SubprocessOptions sub;
    sub.timeout_seconds = options_.worker_timeout_seconds;
    sub.max_stderr_capture_bytes = options_.worker_stderr_cap;
    sub.extra_env = options_.extra_env;
    sub.extra_env.emplace_back("SAFEFLOW_WORKER_ATTEMPT",
                               std::to_string(attempt));

    metrics_->counter("supervisor.workers_spawned").add();
    SAFEFLOW_LOG(support::LogLevel::kDebug, "supervisor", "spawning worker",
                 {{"file", file}, {"attempt", std::to_string(attempt)}});
    std::size_t spawn_span = 0;
    if (options_.trace != nullptr) {
      spawn_span = options_.trace->beginSpan("supervisor.spawn");
      options_.trace->setArg(spawn_span, "file", file);
      options_.trace->setArg(spawn_span, "attempt", std::to_string(attempt));
    }
    const auto t0 = std::chrono::steady_clock::now();
    const support::SubprocessResult run = support::runSubprocess(argv, sub);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (options_.trace != nullptr) options_.trace->endSpan(spawn_span);
    metrics_->duration("supervisor.worker_wall").record(wall);
    result->wall_seconds = wall;
    result->stderr_text = run.err_text;
    result->stderr_truncated = run.err_truncated;
    if (run.err_truncated) {
      metrics_->counter("supervisor.worker_stderr_truncated").add();
      result->stderr_text +=
          "\n[safeflow: worker stderr truncated at " +
          std::to_string(options_.worker_stderr_cap) + " bytes]\n";
    }

    using Status = support::SubprocessResult::Status;
    switch (run.status) {
      case Status::kExited: {
        if (run.exit_code == 0 || run.exit_code == 1 ||
            run.exit_code == 2 || run.exit_code == 3) {
          support::json::Value doc;
          std::string err;
          if (support::json::parse(run.out_text, &doc, &err) &&
              doc.isObject()) {
            result->accepted = true;
            result->report = std::move(doc);
            result->raw_stdout = run.out_text;
            result->exit_code = run.exit_code;
            return;
          }
          if (run.exit_code == 2) {
            // A frontend-style exit without a report is deterministic
            // (the injected "exit2" fault and hard usage errors look
            // like this): retrying cannot help.
            result->failure_reason = "exit 2 (no report)";
            return;
          }
          result->failure_reason =
              "unparseable report (exit " +
              std::to_string(run.exit_code) + ": " + err + ")";
          break;  // torn stdout: worth a retry
        }
        result->failure_reason = "exit " + std::to_string(run.exit_code);
        if (run.exit_code == 127) return;  // exec failure: deterministic
        break;
      }
      case Status::kSignaled:
        metrics_->counter("supervisor.worker_crashes").add();
        result->failure_reason = support::signalName(run.signal_number);
        break;
      case Status::kTimedOut:
        metrics_->counter("supervisor.workers_killed").add();
        result->failure_reason = "timeout";
        break;
      case Status::kSpawnFailed:
        result->failure_reason = "spawn failed: " + run.spawn_error;
        return;  // environment problem, not input-dependent
    }
  }
}

MergedReport Supervisor::run(const std::vector<std::string>& files) {
  std::vector<WorkerOutcome> shards(files.size());
  metrics_->gauge("supervisor.jobs")
      .set(static_cast<double>(options_.jobs));
  if (options_.journal != nullptr) {
    // Pre-register the resume counters so a journaled run always
    // exports them: "0 shards replayed" and "0 workers spawned" are
    // statements the resume tests assert on, not missing series.
    metrics_->counter("supervisor.shards_resumed_skipped").add(0);
    metrics_->counter("supervisor.workers_spawned").add(0);
  }

  const std::size_t nthreads =
      std::min<std::size_t>(options_.jobs, files.size());
  std::atomic<std::size_t> next{0};
  auto pump = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= files.size()) return;
      analyzeShard(i, files[i], &shards[i]);
    }
  };
  if (nthreads <= 1) {
    pump();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) pool.emplace_back(pump);
    for (std::thread& t : pool) t.join();
  }

  const auto merge_start = std::chrono::steady_clock::now();
  std::size_t merge_span = 0;
  if (options_.trace != nullptr) {
    merge_span = options_.trace->beginSpan("supervisor.merge");
  }
  MergedReport merged = mergeWorkerOutcomes(files, shards);
  if (options_.trace != nullptr) options_.trace->endSpan(merge_span);
  const double merge_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    merge_start)
          .count();
  metrics_->duration("supervisor.merge").record(merge_seconds);
  metrics_->gauge("supervisor.merge_seconds").set(merge_seconds);
  metrics_->counter("supervisor.shards_failed")
      .add(merged.worker_failures.size());

  // Fold the supervisor's own registry (including cache.* counters when
  // a cache is attached) into the merged stats so --stats-json reports
  // the orchestration alongside the analysis. The duration digests and
  // resource sample are the supervisor's own: per-shard figures live in
  // stats.shards, so re-folding worker histograms would double-count.
  foldRegistrySnapshot(*metrics_, &merged.stats);
  merged.stats.resource = support::sampleResourceUsage();
  return merged;
}

void foldRegistrySnapshot(const support::MetricsRegistry& metrics,
                          SafeFlowStats* stats) {
  auto snap = metrics.snapshot();
  std::map<std::string, std::uint64_t> counters(stats->counters.begin(),
                                                stats->counters.end());
  for (const auto& [name, value] : snap.counters) counters[name] += value;
  stats->counters.assign(counters.begin(), counters.end());
  std::map<std::string, double> gauges(stats->gauges.begin(),
                                       stats->gauges.end());
  for (const auto& [name, value] : snap.gauges) gauges[name] = value;
  stats->gauges.assign(gauges.begin(), gauges.end());
  // Histograms do not sum meaningfully across processes; the folded
  // registry's own digests (supervisor.shard_seconds, worker_wall,
  // merge) replace whatever was there.
  stats->durations = std::move(snap.durations);
}

RenderedRun renderMergedRun(const MergedReport& merged, bool json,
                            bool quiet) {
  RenderedRun run;
  run.stderr_text = merged.diagnostics_text;
  run.exit_code = merged.exitCode();
  if (json) {
    run.stdout_text = merged.renderJson(merged.stats.renderJson());
    return run;
  }
  std::ostringstream out;
  if (!quiet) out << merged.render();
  out << "safeflow: " << merged.warnings.size() << " warning(s), "
      << merged.dataErrorCount() << " error dependency(ies), "
      << merged.controlErrorCount() << " control-only (review manually), "
      << merged.restriction_violations.size()
      << " restriction violation(s)\n";
  run.stdout_text = out.str();
  return run;
}

MergedReport mergeWorkerOutcomes(const std::vector<std::string>& files,
                                 std::vector<WorkerOutcome>& shards,
                                 bool emit_stderr_headers) {
  using support::json::Value;
  MergedReport merged;
  std::set<std::string> seen;        // finding dedup (headers in many TUs)
  std::set<std::string> seen_checks; // runtime checks repeat per TU
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<std::string> phase_order;  // first-seen = pipeline order
  std::map<std::string, double> phase_seconds;
  std::ostringstream diag;

  for (std::size_t i = 0; i < files.size(); ++i) {
    WorkerOutcome& shard = shards[i];
    // Every shard gets a wall/RSS attribution row; resource figures are
    // filled from the worker's telemetry below when it reported any.
    SafeFlowStats::ShardStat shard_stat;
    shard_stat.file = files[i];
    shard_stat.wall_seconds = shard.wall_seconds;
    shard_stat.attempts = shard.attempts;
    shard_stat.from_cache = shard.from_cache;
    if (!shard.accepted) {
      WorkerFailure failure;
      failure.file = files[i];
      failure.reason = shard.failure_reason;
      failure.attempts = shard.attempts;
      failure.stderr_tail = tail(shard.stderr_text);
      // A dying worker dumps its flight recorder to stderr; decode the
      // SAFEFLOW-FR lines so the failure entry names the phase and the
      // events leading up to the death (DESIGN.md §13). A capped stderr
      // capture may have cut the dump mid-line, so the parser drops a
      // final event it cannot prove complete.
      failure.flight_events = support::parseFlightRecorderLines(
          shard.stderr_text, /*assume_truncated=*/shard.stderr_truncated);
      merged.stats.shards.push_back(std::move(shard_stat));
      merged.failed_files.push_back(files[i]);
      merged.frontend_errors = true;
      if (emit_stderr_headers) {
        diag << "--- worker stderr: " << files[i] << " ("
             << failure.reason << ", " << failure.attempts
             << " attempt(s)) ---\n"
             << failure.stderr_tail;
        if (!failure.stderr_tail.empty() &&
            failure.stderr_tail.back() != '\n') {
          diag << '\n';
        }
      }
      merged.worker_failures.push_back(std::move(failure));
      continue;
    }

    const Value& doc = shard.report;
    if (const Value* telemetry = doc.find("telemetry");
        telemetry != nullptr && telemetry->isObject()) {
      if (const Value* res = telemetry->find("resource");
          res != nullptr && res->isObject()) {
        shard_stat.user_seconds = res->memberNumber("user_seconds");
        shard_stat.sys_seconds = res->memberNumber("sys_seconds");
        shard_stat.max_rss_kb = res->memberUint("max_rss_kb");
      }
      // Cache-hit telemetry carries a previous run's clock epoch, which
      // cannot be re-based onto this run's timeline: no trace lane.
      if (!shard.from_cache) {
        MergedReport::ShardTelemetry lane;
        lane.shard_index = i;
        lane.file = files[i];
        lane.epoch_steady_ns = static_cast<std::int64_t>(
            telemetry->memberNumber("epoch_steady_ns"));
        lane.pid = telemetry->memberUint("pid");
        if (const Value* spans = telemetry->find("spans");
            spans != nullptr && spans->isArray()) {
          lane.spans = *spans;
        }
        merged.shard_telemetry.push_back(std::move(lane));
      }
    }
    merged.stats.shards.push_back(std::move(shard_stat));
    if (shard.exit_code == 2) {
      merged.frontend_errors = true;
      if (emit_stderr_headers) {
        diag << "--- worker stderr: " << files[i]
             << " (frontend errors) ---\n"
             << tail(shard.stderr_text);
        if (!shard.stderr_text.empty() &&
            shard.stderr_text.back() != '\n') {
          diag << '\n';
        }
      }
    }

    if (const Value* ws = doc.find("warnings"); ws != nullptr) {
      for (const Value& w : ws->array) {
        MergedReport::Warning out;
        out.location = w.memberString("location");
        out.function = w.memberString("function");
        out.region = w.memberString("region");
        std::string key =
            out.location + ":warning:" + out.function + ":" + out.region;
        if (const Value* bytes = w.find("bytes");
            bytes != nullptr && bytes->array.size() == 2) {
          out.bytes_known = true;
          out.lo = static_cast<std::int64_t>(bytes->array[0].numberOr(0));
          out.hi = static_cast<std::int64_t>(bytes->array[1].numberOr(0));
          key += ":" + std::to_string(out.lo) + ":" + std::to_string(out.hi);
        }
        if (seen.insert(std::move(key)).second) {
          merged.warnings.push_back(std::move(out));
        }
      }
    }
    if (const Value* es = doc.find("errors"); es != nullptr) {
      for (const Value& e : es->array) {
        MergedReport::Error out;
        out.data = e.memberString("kind") == "data";
        out.location = e.memberString("location");
        out.function = e.memberString("function");
        out.critical = e.memberString("critical");
        std::string key = out.location +
                          (out.data ? ":error:" : ":control:") +
                          out.function + ":" + out.critical;
        if (const Value* rs = e.find("regions"); rs != nullptr) {
          for (const Value& r : rs->array) {
            out.regions.push_back(r.stringOr({}));
            key += ":" + out.regions.back();
          }
        }
        if (const Value* ss = e.find("sources"); ss != nullptr) {
          for (const Value& s : ss->array) {
            out.sources.push_back(s.stringOr({}));
            key += ":" + out.sources.back();
          }
        }
        if (seen.insert(std::move(key)).second) {
          merged.errors.push_back(std::move(out));
        }
      }
    }
    if (const Value* vs = doc.find("restriction_violations");
        vs != nullptr) {
      for (const Value& v : vs->array) {
        MergedReport::Violation out;
        out.rule = v.memberString("rule");
        out.location = v.memberString("location");
        out.message = v.memberString("message");
        std::string key = out.location + ":" + out.rule + ":" + out.message;
        if (seen.insert(std::move(key)).second) {
          merged.restriction_violations.push_back(std::move(out));
        }
      }
    }
    merged.asserts_checked += doc.memberUint("asserts_checked");
    if (const Value* checks = doc.find("required_runtime_checks");
        checks != nullptr) {
      for (const Value& c : checks->array) {
        if (seen_checks.insert(c.stringOr({})).second) {
          merged.required_runtime_checks.push_back(c.stringOr({}));
        }
      }
    }
    if (const Value* phases = doc.find("degraded_phases");
        phases != nullptr) {
      for (const Value& p : phases->array) {
        const std::string name = p.stringOr({});
        if (std::find(merged.degraded_phases.begin(),
                      merged.degraded_phases.end(),
                      name) == merged.degraded_phases.end()) {
          merged.degraded_phases.push_back(name);
        }
      }
    }
    if (const Value* failed = doc.find("failed_files"); failed != nullptr) {
      for (const Value& f : failed->array) {
        merged.failed_files.push_back(f.stringOr({}));
        merged.frontend_errors = true;
      }
    }

    // Fold the worker's embedded stats document.
    if (const Value* stats = doc.find("stats"); stats != nullptr) {
      SafeFlowStats& s = merged.stats;
      s.files += stats->memberUint("files");
      if (const Value* loc = stats->find("loc"); loc != nullptr) {
        s.loc.total_lines += loc->memberUint("total_lines");
        s.loc.code_lines += loc->memberUint("code_lines");
        s.loc.comment_lines += loc->memberUint("comment_lines");
        s.loc.blank_lines += loc->memberUint("blank_lines");
      }
      s.annotation_count += stats->memberUint("annotation_count");
      s.annotation_lines += stats->memberUint("annotation_lines");
      s.functions += stats->memberUint("functions");
      s.monitor_functions += stats->memberUint("monitor_functions");
      s.init_functions += stats->memberUint("init_functions");
      s.shm_regions += stats->memberUint("shm_regions");
      s.noncore_regions += stats->memberUint("noncore_regions");
      s.shm_iterations += stats->memberUint("shm_iterations");
      s.taint_body_analyses += stats->memberUint("taint_body_analyses");
      s.frontend_seconds += stats->memberNumber("frontend_seconds");
      s.analysis_seconds += stats->memberNumber("analysis_seconds");
      s.total_seconds += stats->memberNumber("total_seconds");
      if (const Value* events = stats->find("degraded_phases");
          events != nullptr) {
        for (const Value& e : events->array) {
          support::BudgetEvent event;
          event.phase = e.memberString("phase");
          event.reason = e.memberString("reason");
          event.steps = e.memberUint("steps");
          s.budget_events.push_back(std::move(event));
        }
      }
      if (const Value* failed = stats->find("failed_files");
          failed != nullptr) {
        for (const Value& f : failed->array) {
          s.failed_files.push_back(f.stringOr({}));
        }
      }
      if (const Value* phases = stats->find("phases"); phases != nullptr) {
        for (const Value& p : phases->array) {
          const std::string name = p.memberString("name");
          if (phase_seconds.find(name) == phase_seconds.end()) {
            phase_order.push_back(name);
          }
          phase_seconds[name] += p.memberNumber("seconds");
        }
      }
      if (const Value* cs = stats->find("counters"); cs != nullptr) {
        for (const auto& [name, value] : cs->members) {
          counters[name] += value.uintOr(0);
        }
      }
      if (const Value* gs = stats->find("gauges"); gs != nullptr) {
        for (const auto& [name, value] : gs->members) {
          gauges[name] += value.numberOr(0.0);
        }
      }
    }
  }

  // Dead shards also appear in the stats-level failed list so the two
  // documents agree.
  for (const WorkerFailure& f : merged.worker_failures) {
    merged.stats.failed_files.push_back(f.file);
  }

  // Workers all run the same pipeline, so first-seen order is pipeline
  // order; merging preserves it.
  for (const std::string& name : phase_order) {
    merged.stats.phase_seconds.emplace_back(name, phase_seconds[name]);
  }
  merged.stats.counters.assign(counters.begin(), counters.end());
  merged.stats.gauges.assign(gauges.begin(), gauges.end());
  merged.diagnostics_text = diag.str();
  return merged;
}

std::string MergedReport::render() const {
  std::ostringstream out;
  out << "== SafeFlow report ==\n";
  out << "warnings (unmonitored non-core accesses): " << warnings.size()
      << "\n";
  for (const Warning& w : warnings) {
    out << "  [warning] " << w.location << " in " << w.function
        << ": unmonitored read of non-core region '" << w.region << "'";
    if (w.bytes_known) out << " bytes [" << w.lo << ", " << w.hi << ")";
    out << "\n";
  }
  out << "error dependencies: " << errors.size() << " (" << dataErrorCount()
      << " data, " << controlErrorCount()
      << " control-only; control-only entries require manual review)\n";
  for (const Error& e : errors) {
    out << "  [error/" << (e.data ? "data" : "control") << "] "
        << e.location << " in " << e.function << ": critical value '"
        << e.critical << "' depends on non-core region(s):";
    for (const std::string& r : e.regions) out << " " << r;
    out << "\n";
    for (const std::string& s : e.sources) {
      out << "      via unmonitored load at " << s << "\n";
    }
  }
  out << "restriction violations: " << restriction_violations.size() << "\n";
  for (const Violation& v : restriction_violations) {
    out << "  [" << v.rule << "] " << v.location << ": " << v.message
        << "\n";
  }
  for (const std::string& check : required_runtime_checks) {
    out << "  [runtime-check] " << check << "\n";
  }
  std::set<std::string> dead;
  for (const WorkerFailure& f : worker_failures) dead.insert(f.file);
  for (const std::string& f : failed_files) {
    if (dead.count(f) != 0) continue;
    out << "  [partial] '" << f
        << "' had parse errors; results cover the declarations that "
           "survived recovery\n";
  }
  for (const WorkerFailure& f : worker_failures) {
    out << "  [failed] '" << f.file << "': worker " << f.reason
        << " after " << f.attempts
        << " attempt(s); shard not analyzed\n";
  }
  if (!degraded_phases.empty()) {
    out << "DEGRADED: analysis budget exhausted in";
    for (const std::string& p : degraded_phases) out << " " << p;
    out << "; results are conservative (findings valid, absences "
           "unproven)\n";
  }
  return out.str();
}

std::string MergedReport::renderJson(const std::string& stats_json) const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"warnings\": [";
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    const Warning& w = warnings[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"location\": \""
        << jsonEscape(w.location) << "\", \"function\": \""
        << jsonEscape(w.function) << "\", \"region\": \""
        << jsonEscape(w.region) << "\"";
    if (w.bytes_known) {
      out << ", \"bytes\": [" << w.lo << ", " << w.hi << "]";
    }
    out << "}";
  }
  out << (warnings.empty() ? "]" : "\n  ]");
  out << ",\n  \"errors\": [";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    const Error& e = errors[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"kind\": \""
        << (e.data ? "data" : "control") << "\", \"location\": \""
        << jsonEscape(e.location) << "\", \"function\": \""
        << jsonEscape(e.function) << "\", \"critical\": \""
        << jsonEscape(e.critical) << "\", \"regions\": [";
    for (std::size_t r = 0; r < e.regions.size(); ++r) {
      out << (r == 0 ? "" : ", ") << "\"" << jsonEscape(e.regions[r])
          << "\"";
    }
    out << "], \"sources\": [";
    for (std::size_t s = 0; s < e.sources.size(); ++s) {
      out << (s == 0 ? "" : ", ") << "\"" << jsonEscape(e.sources[s])
          << "\"";
    }
    out << "]}";
  }
  out << (errors.empty() ? "]" : "\n  ]");
  out << ",\n  \"restriction_violations\": [";
  for (std::size_t i = 0; i < restriction_violations.size(); ++i) {
    const Violation& v = restriction_violations[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"rule\": \""
        << jsonEscape(v.rule) << "\", \"location\": \""
        << jsonEscape(v.location) << "\", \"message\": \""
        << jsonEscape(v.message) << "\"}";
  }
  out << (restriction_violations.empty() ? "]" : "\n  ]");
  out << ",\n  \"asserts_checked\": " << asserts_checked
      << ",\n  \"data_errors\": " << dataErrorCount()
      << ",\n  \"control_only\": " << controlErrorCount();
  if (!degraded_phases.empty()) {
    out << ",\n  \"degraded\": true,\n  \"degraded_phases\": [";
    for (std::size_t i = 0; i < degraded_phases.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\"" << jsonEscape(degraded_phases[i])
          << "\"";
    }
    out << "]";
  }
  if (!failed_files.empty()) {
    out << ",\n  \"failed_files\": [";
    for (std::size_t i = 0; i < failed_files.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\"" << jsonEscape(failed_files[i])
          << "\"";
    }
    out << "]";
  }
  if (!worker_failures.empty()) {
    out << ",\n  \"worker_failures\": [";
    for (std::size_t i = 0; i < worker_failures.size(); ++i) {
      const WorkerFailure& f = worker_failures[i];
      out << (i == 0 ? "\n" : ",\n") << "    {\"file\": \""
          << jsonEscape(f.file) << "\", \"reason\": \""
          << jsonEscape(f.reason) << "\", \"attempts\": " << f.attempts;
      if (!f.flight_events.empty()) {
        out << ", \"flight_recorder\": [";
        for (std::size_t e = 0; e < f.flight_events.size(); ++e) {
          const support::FlightEvent& ev = f.flight_events[e];
          out << (e == 0 ? "" : ", ") << "{\"seq\": " << ev.seq
              << ", \"kind\": \"" << jsonEscape(ev.kind)
              << "\", \"detail\": \"" << jsonEscape(ev.detail) << "\"}";
        }
        out << "]";
      }
      out << "}";
    }
    out << "\n  ]";
  }
  if (!stats_json.empty()) {
    std::string indented;
    indented.reserve(stats_json.size());
    for (char c : stats_json) {
      indented += c;
      if (c == '\n') indented += "  ";
    }
    out << ",\n  \"stats\": " << indented;
  }
  out << "\n}\n";
  return out.str();
}

std::string MergedReport::renderStitchedTrace(
    const support::TraceCollector& supervisor_trace) const {
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    out << (first ? "  " : ",\n  ") << event;
    first = false;
  };
  const auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return std::string(buf);
  };
  const auto meta = [&](std::uint64_t pid, const std::string& label) {
    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
         std::to_string(pid) + ", \"tid\": 0, \"args\": {\"name\": \"" +
         jsonEscape(label) + "\"}}");
  };

  // Lane 1: the supervisor's own orchestration spans, already on the
  // reference clock.
  meta(1, "safeflow supervisor");
  for (const support::TraceCollector::Span& s : supervisor_trace.spans()) {
    std::string event =
        "{\"name\": \"" + jsonEscape(s.name) +
        "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(s.tid) +
        ", \"ts\": " + num(s.start_us) +
        ", \"dur\": " + num(s.dur_us < 0.0 ? 0.0 : s.dur_us);
    if (!s.args.empty()) {
      event += ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : s.args) {
        event += (first_arg ? "" : ", ");
        event += "\"" + jsonEscape(key) + "\": \"" + jsonEscape(value) + "\"";
        first_arg = false;
      }
      event += "}";
    }
    event += "}";
    emit(event);
  }

  // One lane per live shard, at a deterministic pid (input-order index +
  // 2) labeled with the file and the worker's real pid. Timestamps are
  // re-based: both clocks are CLOCK_MONOTONIC readings on this machine,
  // so the worker's span offsets shift by the epoch difference.
  const std::int64_t sup_epoch_ns = supervisor_trace.epochSteadyNs();
  for (const ShardTelemetry& lane : shard_telemetry) {
    const std::uint64_t pid = static_cast<std::uint64_t>(lane.shard_index) + 2;
    meta(pid, lane.file + " (pid " + std::to_string(lane.pid) + ")");
    const double base_us =
        static_cast<double>(lane.epoch_steady_ns - sup_epoch_ns) / 1000.0;
    for (const support::json::Value& span : lane.spans.array) {
      const double dur = span.memberNumber("dur_us");
      std::string event =
          "{\"name\": \"" + jsonEscape(span.memberString("name")) +
          "\", \"ph\": \"X\", \"pid\": " + std::to_string(pid) +
          ", \"tid\": " + std::to_string(span.memberUint("tid")) +
          ", \"ts\": " + num(base_us + span.memberNumber("start_us")) +
          ", \"dur\": " + num(dur < 0.0 ? 0.0 : dur);
      if (const support::json::Value* args = span.find("args");
          args != nullptr && args->isObject() && !args->members.empty()) {
        event += ", \"args\": {";
        bool first_arg = true;
        for (const auto& [key, value] : args->members) {
          event += (first_arg ? "" : ", ");
          event += "\"" + jsonEscape(key) + "\": \"" +
                   jsonEscape(value.stringOr({})) + "\"";
          first_arg = false;
        }
        event += "}";
      }
      event += "}";
      emit(event);
    }
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace safeflow
