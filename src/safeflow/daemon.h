// safeflowd — the resident analysis daemon (DESIGN.md §14): a
// Unix-domain-socket server that keeps the DiskCache warm and the
// supervisor worker pool resident, so every IDE keystroke or CI job
// stops paying full process startup and cold caches.
//
// Protocol: NDJSON, one request per connection. The client sends one
// JSON object terminated by '\n', the daemon replies with one JSON
// object terminated by '\n' and closes. Requests carry a version field
// (`"safeflowd": 1`) and an `op`:
//
//   {"safeflowd":1,"op":"analyze","files":[...],"flags":[...],
//    "json":false,"quiet":false,"deadline_ms":300000}
//   {"safeflowd":1,"op":"status"}
//   {"safeflowd":1,"op":"shutdown"}
//
// Responses (`status` discriminates):
//   ok        analyze finished: exit_code + the exact bytes the one-shot
//             CLI would have printed (stdout/stderr members). Byte
//             identity with `safeflow --isolate --jobs N` is a hard
//             contract, enforced by renderMergedRun being the single
//             rendering path for both.
//   busy      admission control shed the request (queue depth or RSS
//             cap); carries retry_after_ms and queue_depth.
//   draining  SIGTERM received; the daemon finishes in-flight work and
//             exits. Clients fall back to in-process analysis.
//   error     malformed request, unsupported flag, expired deadline.
//
// Robustness ladder (degrade, never mis-certify):
//   - per-request deadlines tighten the worker watchdog, so one slow
//     request cannot pin a connection past what its client will wait;
//   - admission control sheds load with a structured `busy` before the
//     queue or the process RSS can grow without bound;
//   - identical concurrent requests coalesce: one analysis runs, every
//     waiter receives the leader's byte-identical response;
//   - worker crashes are already contained by the supervisor (SIGKILL
//     watchdog, retries, flight-recorder postmortems) and surface in
//     the response like the one-shot CLI surfaces them;
//   - malformed/oversized/disconnected requests cost one connection
//     thread an error path, never the daemon;
//   - a pressure watchdog samples RSS, open fds, and cache-dir disk
//     free every pressure_interval_seconds and walks a degradation
//     ladder (level = worst resource's usage fraction): level 1
//     (>=75%) halves the waiting room, level 2 (>=90%) sheds new
//     analyzes with `busy`, level 3 (>=100%) additionally evicts the
//     disk cache to half its cap, and a level that stays saturated for
//     ~8 consecutive samples becomes level 4: drain. Every transition
//     is counted, flight-recorded, and exported as daemon.pressure.*;
//   - SIGTERM drains: stop accepting, finish in-flight, flush metrics,
//     exit 0. A SIGKILLed daemon restarts clean: the stale socket file
//     is probed-then-swept, stale cache temp files are aged out, and a
//     verify sweep purges torn cache entries a crash left behind.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "safeflow/cache_manager.h"
#include "support/metrics.h"

namespace safeflow {

struct DaemonOptions {
  std::string socket_path = "safeflowd.sock";
  /// Worker-pool width per analyze request (the supervisor's --jobs).
  std::size_t jobs = 2;
  /// Concurrent analyze requests actually running (each holding a
  /// worker pool); further admitted requests queue.
  std::size_t max_inflight = 2;
  /// Queued (admitted but not yet running) analyze requests beyond
  /// which new ones are shed with `busy`.
  std::size_t max_queue = 8;
  /// Shed new analyze requests while the daemon's resident set exceeds
  /// this many MiB; 0 disables the RSS gate. Also the RSS axis of the
  /// pressure ladder (level = RSS / max_rss_mb).
  std::uint64_t max_rss_mb = 0;
  /// Pressure watchdog sampling period in seconds; <= 0 disables the
  /// watchdog entirely (the one-shot RSS gate above still applies).
  double pressure_interval_seconds = 1.0;
  /// Open-fd budget for the pressure ladder (usage fraction =
  /// open fds / max_open_fds); 0 disables the fd axis.
  std::uint64_t max_open_fds = 0;
  /// Free-space floor (MiB) on the cache directory's filesystem: at or
  /// below this the disk axis reads fully saturated, at 2x it reads
  /// half. 0 disables the disk axis.
  std::uint64_t min_disk_free_mb = 0;
  /// Watchdog deadline per worker attempt; a request deadline tightens
  /// it further.
  double worker_timeout_seconds = 60.0;
  int max_retries = 2;
  std::size_t worker_stderr_cap = 64u << 10;
  /// Applied when a request carries no deadline_ms.
  double default_deadline_seconds = 300.0;
  /// Hard cap on one request line; longer is rejected as oversized.
  std::size_t max_request_bytes = 4u << 20;
  /// Per-connection read deadline: a client that connects and dribbles
  /// (or sends nothing) is cut off after this long.
  double io_timeout_seconds = 10.0;
  /// retry_after_ms hint in `busy` responses.
  double retry_after_seconds = 0.25;
  /// Path of the safeflow binary spawned as --worker.
  std::string worker_exe;
  /// Shared across every client request (one content-addressed dir).
  CacheOptions cache;
  /// When non-empty, the daemon registry is flushed there as Prometheus
  /// text exposition during drain.
  std::string metrics_out_path;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  /// Binds the socket (sweeping a stale file from a crashed daemon
  /// first). False with `*error` set when the path is taken by a live
  /// daemon or the bind fails.
  bool start(std::string* error);

  /// Accept loop; blocks until requestStop() (or a served `shutdown`
  /// op), then drains in-flight requests, flushes metrics, and removes
  /// the socket. Returns 0 on a clean drain.
  int serve();

  /// Async-signal-safe stop: latches a flag and wakes the accept loop
  /// through a self-pipe. Callable from a signal handler.
  void requestStop();

  [[nodiscard]] const DaemonOptions& options() const { return options_; }
  [[nodiscard]] support::MetricsRegistry& metrics() { return metrics_; }

 private:
  /// One coalesced analysis: the leader fills `response` and flips
  /// `done`; every waiter blocks on `cv` and then sends the identical
  /// bytes.
  struct Job {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::string response;  // full NDJSON response line
  };

  void handleConnection(int fd);
  std::string handleRequest(const std::string& line, bool* fatal_parse);
  std::string handleAnalyze(const support::json::Value& request);
  std::string runAnalysis(const std::vector<std::string>& files,
                          const std::vector<std::string>& flags,
                          bool json, bool quiet, double deadline_seconds);
  std::string statusResponse();
  [[nodiscard]] std::string busyResponse();
  void flushMetrics();
  /// Watchdog thread body: sample resources, publish daemon.pressure.*
  /// gauges, walk the degradation ladder, act on transitions.
  void pressureWatchdog();
  /// One sample: returns the new ladder level (0..4).
  /// `sustained_critical` counts consecutive saturated samples and is
  /// owned by the watchdog thread.
  int samplePressure(int* sustained_critical);

  DaemonOptions options_;
  support::MetricsRegistry metrics_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  /// Current degradation-ladder level, written by the watchdog thread,
  /// read (relaxed) by admission control and the status document.
  std::atomic<int> pressure_level_{0};
  std::thread pressure_thread_;

  std::mutex mu_;
  std::condition_variable slots_cv_;      // in-flight slot released
  std::condition_variable connections_cv_;  // a connection thread exited
  std::size_t in_flight_ = 0;   // analyses running
  std::size_t queued_ = 0;      // analyses admitted, waiting for a slot
  std::size_t connections_ = 0; // live connection threads
  std::map<std::string, std::shared_ptr<Job>> jobs_;  // coalescing map
};

}  // namespace safeflow
