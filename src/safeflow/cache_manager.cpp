#include "safeflow/cache_manager.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <sys/stat.h>

#include "safeflow/driver.h"
#include "support/flight_recorder.h"
#include "support/log.h"

namespace safeflow {

namespace {

/// Envelope schema; bumped independently of kAnalyzerVersion when the
/// entry layout itself changes.
constexpr std::uint64_t kCacheSchema = 1;

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool fileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::string directoryOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  return path.substr(0, slash);
}

/// Extracts every `#include "name"` target from `text`, conditional
/// compilation ignored (see the soundness note in cache_manager.h:
/// hashing a superset of the real closure is safe, a subset is not).
std::vector<std::string> scanIncludes(std::string_view text) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    constexpr std::string_view kInclude = "include";
    if (line.substr(i, kInclude.size()) != kInclude) continue;
    i += kInclude.size();
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] != '"') continue;  // <...> ignored
    const std::size_t close = line.find('"', i + 1);
    if (close == std::string::npos) continue;
    names.emplace_back(line.substr(i + 1, close - i - 1));
  }
  return names;
}

}  // namespace

CacheManager::CacheManager(CacheOptions options,
                           support::MetricsRegistry* metrics)
    : options_(std::move(options)),
      disk_({options_.dir, options_.max_bytes}),
      metrics_(metrics) {
  // Injected faults make runs non-deterministic: never serve or record
  // results while the fault hook is armed.
  if (std::getenv("SAFEFLOW_INJECT_FAULT") != nullptr) {
    disable("fault-injection");
  }
  // Crash recovery: a writer killed between open() and rename() leaves
  // a *.tmp file behind. Old ones are garbage; the age discipline in
  // sweepStrayTemps leaves a live concurrent writer's temp alone.
  if (options_.enabled) {
    const std::uint64_t swept = disk_.sweepStrayTemps();
    if (swept > 0) {
      count("cache.temps_swept", swept);
      SAFEFLOW_LOG(support::LogLevel::kNote, "cache",
                   "note: swept stale cache temp files",
                   {{"count", std::to_string(swept)},
                    {"dir", options_.dir}});
    }
    // Verify-and-purge: a write torn by a killed process or a power cut
    // fails its envelope checksum and is removed before it can be
    // served. Each purge gets the same diagnostic a lookup-time
    // corruption would, and is counted so the chaos soak can assert
    // detection happened.
    if (options_.verify_on_open) {
      std::vector<std::string> purged_paths;
      const std::uint64_t purged = disk_.verifyEntries(&purged_paths);
      if (purged > 0) {
        count("cache.torn_entries_purged", purged);
        count("cache.corrupt", purged);
        support::flightRecord("cache",
                              "purged " + std::to_string(purged) +
                                  " torn entr(ies) at open");
        for (const std::string& path : purged_paths) {
          SAFEFLOW_LOG(support::LogLevel::kWarn, "cache",
                       "cache entry " + path +
                           " is corrupt (torn or truncated on disk); "
                           "falling back to cold analysis",
                       {{"dir", options_.dir}});
        }
      }
    }
  }
}

void CacheManager::disable(std::string reason) {
  if (!options_.enabled) return;
  options_.enabled = false;
  disabled_reason_ = std::move(reason);
  support::flightRecord("cache", "disabled: " + disabled_reason_);
  SAFEFLOW_LOG(support::LogLevel::kNote, "cache",
               "note: incremental cache disabled",
               {{"reason", disabled_reason_}, {"dir", options_.dir}});
}

void CacheManager::count(const char* name, std::uint64_t delta) {
  if (metrics_ != nullptr) metrics_->counter(name).add(delta);
}

const CacheManager::FileInfo& CacheManager::fileInfo(
    const std::string& path) const {
  const auto it = file_info_.find(path);
  if (it != file_info_.end()) return it->second;

  FileInfo info;
  const std::optional<std::string> contents = readFile(path);
  if (contents.has_value()) {
    info.exists = true;
    info.contents = *contents;
    const std::string dir = directoryOf(path);
    for (const std::string& name : scanIncludes(info.contents)) {
      // Resolution order mirrors Preprocessor::handleInclude: the
      // including file's directory first, then -I dirs in order.
      std::string resolved;
      if (const std::string local = dir + "/" + name; fileExists(local)) {
        resolved = local;
      } else {
        for (const std::string& inc : options_.include_dirs) {
          if (std::string candidate = inc + "/" + name;
              fileExists(candidate)) {
            resolved = std::move(candidate);
            break;
          }
        }
      }
      if (resolved.empty()) {
        // Unresolvable today; if the header appears tomorrow the marker
        // disappears and the key changes.
        info.includes.emplace_back(false, name);
      } else {
        info.includes.emplace_back(true, std::move(resolved));
      }
    }
  }
  // std::map references are stable, so the recursion in
  // hashFileClosure can keep this reference across further inserts.
  return file_info_.emplace(path, std::move(info)).first->second;
}

void CacheManager::hashFileClosure(const std::string& path,
                                   const std::string& display_name,
                                   support::Fnv1a& hasher,
                                   std::vector<std::string>& visited) const {
  for (const std::string& seen : visited) {
    if (seen == path) return;
  }
  visited.push_back(path);

  const FileInfo& info = fileInfo(path);
  if (!info.exists) {
    hasher.update("missing:");
    hasher.update(display_name);
    hasher.update("\n");
    return;
  }
  hasher.update("file:");
  hasher.update(display_name);
  hasher.update(":");
  hasher.update(std::to_string(info.contents.size()));
  hasher.update("\n");
  hasher.update(info.contents);

  for (const auto& [resolved, value] : info.includes) {
    if (!resolved) {
      hasher.update("unresolved-include:");
      hasher.update(value);
      hasher.update("\n");
      continue;
    }
    hashFileClosure(value, value, hasher, visited);
  }
}

std::string CacheManager::keyFor(
    const std::vector<std::string>& files) const {
  const std::lock_guard<std::mutex> lock(closure_mu_);
  support::Fnv1a hasher;
  hasher.update("safeflow-cache-schema:");
  hasher.update(std::to_string(kCacheSchema));
  hasher.update("\n");
  hasher.update("analyzer:");
  hasher.update(kAnalyzerVersion);
  hasher.update("\n");
  for (const std::string& flag : options_.analysis_flags) {
    hasher.update("flag:");
    hasher.update(flag);
    hasher.update("\n");
  }
  for (const std::string& file : files) {
    hasher.update("tu:");
    hasher.update(file);
    hasher.update("\n");
    std::vector<std::string> visited;
    hashFileClosure(file, file, hasher, visited);
  }
  return hasher.hex();
}

std::optional<CachedResult> CacheManager::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  support::DiskCache::LookupResult checked = disk_.lookupChecked(key);
  if (checked.status == support::DiskCache::LookupStatus::kMiss) {
    count("cache.misses");
    support::flightRecord("cache", "miss " + key);
    SAFEFLOW_LOG(support::LogLevel::kDebug, "cache", "cache miss",
                 {{"key", key}});
    return std::nullopt;
  }

  // Anything short of a fully valid envelope is "corrupt": diagnose,
  // purge, and fall back to a cold run. Never a crash, never a wrong
  // report. A storage-layer checksum failure (torn/truncated write) is
  // additionally counted under cache.torn_entries_purged.
  std::string why;
  support::json::Value doc;
  CachedResult result;
  std::string parse_error;
  if (checked.status == support::DiskCache::LookupStatus::kTorn) {
    why = "torn or truncated on disk";
    count("cache.torn_entries_purged");
  } else if (!support::json::parse(checked.payload, &doc, &parse_error) ||
             !doc.isObject()) {
    why = "unparseable payload (" + parse_error + ")";
  } else if (doc.memberUint("cache_schema") != kCacheSchema) {
    why = "unknown cache_schema";
  } else if (doc.memberString("analyzer_version") != kAnalyzerVersion) {
    why = "analyzer version mismatch";
  } else if (doc.memberString("key") != key) {
    why = "key echo mismatch";
  } else if (const support::json::Value* exit_code = doc.find("exit_code");
             exit_code == nullptr || !exit_code->isNumber() ||
             exit_code->number_value < 0 || exit_code->number_value > 3) {
    why = "exit code out of range";
  } else if (const support::json::Value* report = doc.find("report");
             report == nullptr || !report->isObject() ||
             report->find("schema_version") == nullptr) {
    why = "missing report document";
  } else {
    result.exit_code = static_cast<int>(doc.memberNumber("exit_code"));
    result.stderr_text = doc.memberString("stderr");
    for (auto& [name, value] : doc.members) {
      if (name == "report") {
        result.report = std::move(value);
        break;
      }
    }
  }

  if (!why.empty()) {
    // CI greps for the "falling back to cold analysis" substring; keep
    // it inside the message whichever log format is active.
    SAFEFLOW_LOG(support::LogLevel::kWarn, "cache",
                 "cache entry " + disk_.entryPath(key) + " is corrupt (" +
                     why + "); falling back to cold analysis",
                 {{"key", key}});
    support::flightRecord("cache", "corrupt " + key);
    disk_.remove(key);
    count("cache.corrupt");
    count("cache.misses");
    return std::nullopt;
  }
  count("cache.hits");
  support::flightRecord("cache", "hit " + key);
  SAFEFLOW_LOG(support::LogLevel::kDebug, "cache", "cache hit",
               {{"key", key}});
  return result;
}

void CacheManager::store(const std::string& key,
                         const std::string& report_json, int exit_code,
                         const std::string& stderr_text) {
  if (exit_code < 0 || exit_code > 3) return;  // not a ladder outcome
  std::ostringstream out;
  out << "{\n  \"cache_schema\": " << kCacheSchema
      << ",\n  \"analyzer_version\": \"" << jsonEscape(kAnalyzerVersion)
      << "\",\n  \"key\": \"" << jsonEscape(key)
      << "\",\n  \"exit_code\": " << exit_code << ",\n  \"stderr\": \""
      << jsonEscape(stderr_text) << "\",\n  \"report\": " << report_json
      << "\n}\n";

  const std::lock_guard<std::mutex> lock(mu_);
  const support::DiskCache::StoreResult stored = disk_.store(key, out.str());
  if (!stored.ok) {
    SAFEFLOW_LOG(support::LogLevel::kWarn, "cache",
                 "cannot write cache entry for key " + key + ": " +
                     stored.error);
    return;
  }
  count("cache.writes");
  support::flightRecord("cache", "store " + key);
  SAFEFLOW_LOG(support::LogLevel::kDebug, "cache", "cache store",
               {{"key", key}});
  if (stored.evicted > 0) count("cache.evictions", stored.evicted);
  if (metrics_ != nullptr) {
    metrics_->gauge("cache.size_bytes")
        .set(static_cast<double>(disk_.totalBytes()));
  }
}

std::string CacheManager::statsLine() const {
  const auto value = [this](const char* name) -> std::uint64_t {
    return metrics_ == nullptr ? 0 : metrics_->counterValue(name);
  };
  std::ostringstream out;
  out << "safeflow cache: " << value("cache.hits") << " hit(s), "
      << value("cache.misses") << " miss(es), " << value("cache.writes")
      << " write(s), " << value("cache.evictions") << " eviction(s), "
      << value("cache.corrupt") << " corrupt, " << disk_.totalBytes()
      << " bytes in " << options_.dir << "\n";
  return out.str();
}

}  // namespace safeflow
