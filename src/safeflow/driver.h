// SafeFlow public entry point. Typical use:
//
//   safeflow::SafeFlowDriver driver;
//   driver.addFile("core/controller.c");
//   driver.addFile("core/decision.c");
//   const auto& report = driver.analyze();
//   std::cout << report.render(driver.sources());
//
// The driver owns the whole pipeline: C front end, IR lowering + SSA,
// shared-memory region discovery, phase 1 pointer propagation, phase 2
// restriction checking, the alias analysis, and the phase 3 value-flow /
// critical-data analysis.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "analysis/restrictions.h"
#include "analysis/taint.h"
#include "cfront/frontend.h"
#include "ir/ir.h"
#include "support/loc_counter.h"

namespace safeflow {

struct SafeFlowOptions {
  std::vector<std::string> include_dirs;
  std::vector<std::pair<std::string, std::string>> defines;
  analysis::TaintOptions taint;
  analysis::AliasOptions alias;
  analysis::RestrictionOptions restrictions;
};

struct SafeFlowStats {
  std::size_t files = 0;
  support::LocStats loc;  // aggregated over added files
  std::size_t annotation_count = 0;
  std::size_t annotation_lines = 0;
  std::size_t functions = 0;
  std::size_t monitor_functions = 0;
  std::size_t init_functions = 0;
  std::size_t shm_regions = 0;
  std::size_t noncore_regions = 0;
  std::size_t shm_iterations = 0;
  std::size_t taint_body_analyses = 0;
  double analysis_seconds = 0.0;
};

class SafeFlowDriver {
 public:
  explicit SafeFlowDriver(SafeFlowOptions options = {});
  ~SafeFlowDriver();
  SafeFlowDriver(const SafeFlowDriver&) = delete;
  SafeFlowDriver& operator=(const SafeFlowDriver&) = delete;

  /// Adds a core-component source file (or buffer) to the analysis set.
  bool addFile(const std::string& path);
  bool addSource(std::string name, std::string text);

  /// Runs every phase and returns the report. Idempotent: repeated calls
  /// return the same report.
  const analysis::SafeFlowReport& analyze();

  [[nodiscard]] const analysis::SafeFlowReport& report() const {
    return report_;
  }
  [[nodiscard]] const SafeFlowStats& stats() const { return stats_; }
  [[nodiscard]] const support::SourceManager& sources() const;
  [[nodiscard]] const support::DiagnosticEngine& diagnostics() const;
  [[nodiscard]] bool hasFrontendErrors() const { return frontend_errors_; }
  /// The lowered module (valid after analyze()).
  [[nodiscard]] const ir::Module* module() const { return module_.get(); }

 private:
  void countAnnotations();

  SafeFlowOptions options_;
  cfront::Frontend frontend_;
  std::unique_ptr<ir::Module> module_;
  analysis::SafeFlowReport report_;
  SafeFlowStats stats_;
  bool analyzed_ = false;
  bool frontend_errors_ = false;
};

}  // namespace safeflow
