// SafeFlow public entry point. Typical use:
//
//   safeflow::SafeFlowDriver driver;
//   driver.addFile("core/controller.c");
//   driver.addFile("core/decision.c");
//   const auto& report = driver.analyze();
//   std::cout << report.render(driver.sources());
//
// The driver owns the whole pipeline: C front end, IR lowering + SSA,
// shared-memory region discovery, phase 1 pointer propagation, phase 2
// restriction checking, the alias analysis, and the phase 3 value-flow /
// critical-data analysis.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/ranges.h"
#include "analysis/report.h"
#include "analysis/restrictions.h"
#include "analysis/taint.h"
#include "cfront/frontend.h"
#include "ir/ir.h"
#include "support/limits.h"
#include "support/loc_counter.h"
#include "support/metrics.h"

namespace safeflow {

class SummaryStore;

/// Analyzer identity: printed by `safeflow --version` and hashed into
/// every incremental-cache key (see safeflow/cache_manager.h).
///
/// BUMP THIS on any change that can alter analysis results, the report
/// or stats JSON schema, or the worker protocol — macro expansion,
/// propagation, restriction rules, taint, rendering, defaults. The bump
/// is what invalidates every stale cache entry; forgetting it means an
/// upgraded analyzer can replay a report the old version produced.
inline constexpr const char kAnalyzerVersion[] = "0.9.0";

/// The exit-code ladder, shared by the in-process CLI path and the
/// supervised (worker-pool) path so the two can never disagree:
///
///   1  error dependencies found (data errors)
///   2  usage / front-end errors (including worker crashes: the file was
///      not fully analyzed)
///   3  clean but degraded (an analysis budget tripped; findings are
///      valid, absences unproven)
///   0  clean
[[nodiscard]] constexpr int exitCodeFor(std::size_t data_errors,
                                        bool frontend_errors,
                                        bool degraded) {
  if (data_errors > 0) return 1;
  if (frontend_errors) return 2;
  if (degraded) return 3;
  return 0;
}

/// Function-level summary memoization (--summaries, DESIGN.md §16).
struct SummaryOptions {
  bool enabled = false;
  /// On-disk store directory; empty = memory-only (still useful for a
  /// resident store handed in via setSummaryStore()).
  std::string dir;
  /// --verify-summaries: after the memoized phases, re-solve everything
  /// cold and assert state identity (summaryVerifyFailed()).
  bool verify = false;
};

struct SafeFlowOptions {
  std::vector<std::string> include_dirs;
  std::vector<std::pair<std::string, std::string>> defines;
  analysis::TaintOptions taint;
  analysis::AliasOptions alias;
  analysis::RestrictionOptions restrictions;
  /// Value-range analysis (--ranges / --no-ranges). Enabled by default;
  /// disabling it keeps the whole pipeline byte-identical to pre-0.5.0
  /// output (no ranges.* counters, no "ranges" phase, no discharges).
  analysis::RangeOptions ranges;
  /// Record hierarchical spans for the whole pipeline (Chrome trace /
  /// Perfetto export via SafeFlowDriver::trace()). Counters and per-phase
  /// wall times are always collected; only span recording is optional.
  bool collect_trace = false;
  /// Analysis budget (--time-budget / --step-budget / --max-depth). The
  /// default is unlimited; see support/limits.h and DESIGN.md for the
  /// degradation semantics when a limit trips.
  support::BudgetLimits budget;
  SummaryOptions summaries;
};

struct SafeFlowStats {
  std::size_t files = 0;
  support::LocStats loc;  // aggregated over added files
  std::size_t annotation_count = 0;
  std::size_t annotation_lines = 0;
  std::size_t functions = 0;
  std::size_t monitor_functions = 0;
  std::size_t init_functions = 0;
  std::size_t shm_regions = 0;
  std::size_t noncore_regions = 0;
  std::size_t shm_iterations = 0;
  std::size_t taint_body_analyses = 0;
  /// Wall time spent in the front end (preprocess + parse, all files).
  double frontend_seconds = 0.0;
  /// Wall time of analyze() (lowering through reporting).
  double analysis_seconds = 0.0;
  /// frontend_seconds + analysis_seconds.
  double total_seconds = 0.0;
  /// Per-phase wall time in pipeline order ("frontend", "lowering", "ssa",
  /// "shm_regions", "callgraph", "ranges", "shm_propagation",
  /// "restrictions", "alias", "taint", "report"), backed by the metrics
  /// registry.
  std::vector<std::pair<std::string, double>> phase_seconds;
  /// Snapshot of every named pipeline counter (e.g.
  /// "taint.body_analyses"), sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Snapshot of every named gauge (e.g. "alias.objects"), sorted by name.
  std::vector<std::pair<std::string, double>> gauges;
  /// Phases whose budget tripped, in trip order (empty on a full run).
  /// Mirrored into the report and the JSON renderings; a non-empty list
  /// means the run degraded and must not be read as certifying.
  std::vector<support::BudgetEvent> budget_events;
  /// Input files the front end could not fully parse; analysis continued
  /// on the declarations that survived recovery (empty on a clean run).
  std::vector<std::string> failed_files;
  /// Per-duration-histogram digest (count/total/min/max/p50/p90/p99),
  /// name-sorted; covers every "phase.*" histogram plus supervisor-side
  /// histograms like "supervisor.shard_seconds" (schema_version 2).
  std::vector<support::MetricsRegistry::DurationSnapshot> durations;
  /// Per-shard attribution filled by the supervisor (empty on the
  /// in-process path): wall clock, CPU split, and peak RSS per worker.
  struct ShardStat {
    std::string file;
    double wall_seconds = 0.0;
    double user_seconds = 0.0;
    double sys_seconds = 0.0;
    std::uint64_t max_rss_kb = 0;
    int attempts = 1;
    bool from_cache = false;
  };
  std::vector<ShardStat> shards;
  /// This process's own getrusage sample, taken when stats are finalized.
  support::ResourceSample resource;
  /// Why a requested incremental cache was disabled ("" when it ran):
  /// "fault-injection", "trace", or "dot" (CacheManager::disabledReason).
  std::string cache_disabled_reason;
  /// Why requested summary memoization was disabled ("" when it ran):
  /// "budget", "call-strings", or "fault-injection".
  std::string summaries_disabled_reason;

  /// Human-readable statistics table (what `safeflow --stats` prints).
  [[nodiscard]] std::string renderTable() const;
  /// Machine-readable JSON object (snake_case keys, schema_version field);
  /// the same object `safeflow --stats-json` writes and `--json` embeds.
  /// Schema history: v1 through analyzer 0.5.0; v2 adds durations
  /// digests, shards, resource, and cache_disabled_reason.
  [[nodiscard]] std::string renderJson() const;
  /// Prometheus text exposition (what `--metrics-out <file>` writes):
  /// counters as safeflow_<name>_total, gauges/timings as safeflow_<name>.
  [[nodiscard]] std::string renderPrometheus() const;
};

class SafeFlowDriver {
 public:
  explicit SafeFlowDriver(SafeFlowOptions options = {});
  ~SafeFlowDriver();
  SafeFlowDriver(const SafeFlowDriver&) = delete;
  SafeFlowDriver& operator=(const SafeFlowDriver&) = delete;

  /// Adds a core-component source file (or buffer) to the analysis set.
  bool addFile(const std::string& path);
  bool addSource(std::string name, std::string text);

  /// Runs every phase and returns the report. Idempotent: repeated calls
  /// return the same report.
  const analysis::SafeFlowReport& analyze();

  [[nodiscard]] const analysis::SafeFlowReport& report() const {
    return report_;
  }
  [[nodiscard]] const SafeFlowStats& stats() const { return stats_; }
  [[nodiscard]] const support::SourceManager& sources() const;
  [[nodiscard]] const support::DiagnosticEngine& diagnostics() const;
  [[nodiscard]] bool hasFrontendErrors() const { return frontend_errors_; }
  /// True when any phase ran out of budget (results are conservative).
  [[nodiscard]] bool degraded() const { return budget_.anyDegraded(); }
  [[nodiscard]] const support::AnalysisBudget& budget() const {
    return budget_;
  }
  /// Files addFile() could not fully parse (analysis continued without
  /// the unparsed declarations).
  [[nodiscard]] const std::vector<std::string>& failedFiles() const {
    return failed_files_;
  }
  /// The lowered module (valid after analyze()).
  [[nodiscard]] const ir::Module* module() const { return module_.get(); }

  /// Every counter/gauge/duration the pipeline reported for this driver.
  [[nodiscard]] const support::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] support::MetricsRegistry& metrics() { return metrics_; }
  /// The span collector, or nullptr unless options.collect_trace was set.
  [[nodiscard]] const support::TraceCollector* trace() const {
    return trace_.get();
  }

  /// Hands the driver an external (typically resident or shared) summary
  /// store instead of letting it own one. Must be called before
  /// analyze(); requires options.summaries.enabled to take effect.
  void setSummaryStore(SummaryStore* store) { summary_store_ = store; }
  /// The store summaries ran against this run (owned or external), or
  /// nullptr when summaries were off or disabled.
  [[nodiscard]] SummaryStore* summaryStore() const { return summary_store_; }
  /// True when --verify-summaries re-solved cold and found a state
  /// divergence (a memoization bug — the CLI exits 2 on it).
  [[nodiscard]] bool summaryVerifyFailed() const {
    return summary_verify_failed_;
  }

 private:
  void countAnnotations();
  /// Opens the root span / starts the pipeline clock on first use.
  void beginPipeline();
  /// Closes the root span and snapshots the registry into stats_.
  void finishPipeline();

  SafeFlowOptions options_;
  support::AnalysisBudget budget_;
  std::unique_ptr<SummaryStore> owned_summary_store_;
  SummaryStore* summary_store_ = nullptr;
  bool summary_verify_failed_ = false;
  std::vector<std::string> failed_files_;
  support::MetricsRegistry metrics_;
  std::unique_ptr<support::TraceCollector> trace_;
  support::PipelineObserver observer_;
  cfront::Frontend frontend_;
  std::unique_ptr<ir::Module> module_;
  analysis::SafeFlowReport report_;
  SafeFlowStats stats_;
  bool analyzed_ = false;
  bool frontend_errors_ = false;
  bool pipeline_started_ = false;
  std::size_t root_span_ = 0;
};

}  // namespace safeflow
