#include "safeflow/corpus_info.h"

#include <fstream>
#include <sstream>

#include "support/loc_counter.h"
#include "support/text_diff.h"

namespace safeflow {

namespace {

std::vector<std::string> prefixAll(const std::string& dir,
                                   std::vector<std::string> files) {
  for (std::string& f : files) f = dir + "/" + f;
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::vector<CorpusSystem> corpusSystems(const std::string& corpus_dir) {
  std::vector<CorpusSystem> systems;

  {
    CorpusSystem ip;
    ip.name = "ip";
    ip.display_name = "IP";
    const std::string root = corpus_dir + "/ip";
    ip.core_files = prefixAll(
        root, {"core/comm.c", "core/safety.c", "core/filter.c",
               "core/telemetry.c", "core/selftest.c", "core/decision.c",
               "core/main.c"});
    ip.all_files = prefixAll(
        root, {"core/comm.c", "core/safety.c", "core/filter.c",
               "core/telemetry.c", "core/selftest.c", "core/decision.c",
               "core/main.c", "common/ipc_types.h", "common/sys.h",
               "noncore/ncctrl.c", "noncore/ui.c", "noncore/trace.c"});
    ip.refactor_pairs = {{root + "/original/decision.c",
                          root + "/core/decision.c"}};
    ip.paper = PaperRow{7079, 820, 7, 86, 1, 11, 1, 7, 2};
    systems.push_back(std::move(ip));
  }

  {
    CorpusSystem gs;
    gs.name = "generic_simplex";
    gs.display_name = "Generic Simplex";
    const std::string root = corpus_dir + "/generic_simplex";
    gs.core_files = prefixAll(
        root, {"core/comm.c", "core/config.c", "core/safety.c",
               "core/profile.c", "core/watchdog.c", "core/estimator.c",
               "core/monitors.c", "core/main.c"});
    gs.all_files = prefixAll(
        root, {"core/comm.c", "core/config.c", "core/safety.c",
               "core/profile.c", "core/watchdog.c", "core/estimator.c",
               "core/monitors.c", "core/main.c", "common/gs_types.h",
               "common/sys.h", "noncore/adaptive.c", "noncore/tuner.c",
               "noncore/logger.c", "noncore/console.c"});
    gs.refactor_pairs = {};  // no source changes were needed (Table 1)
    gs.paper = PaperRow{8057, 1020, 0, 0, 0, 22, 2, 7, 6};
    systems.push_back(std::move(gs));
  }

  {
    CorpusSystem dip;
    dip.name = "double_ip";
    dip.display_name = "Double IP";
    const std::string root = corpus_dir + "/double_ip";
    dip.core_files = prefixAll(
        root, {"core/comm.c", "core/safety.c", "core/estimator.c",
               "core/trajectory.c", "core/decision.c", "core/modes.c",
               "core/main.c"});
    dip.all_files = prefixAll(
        root, {"core/comm.c", "core/safety.c", "core/estimator.c",
               "core/trajectory.c", "core/decision.c", "core/modes.c",
               "core/main.c", "common/dip_types.h",
               "common/sys.h", "noncore/swingup.c", "noncore/ncctrl2.c",
               "noncore/console.c", "noncore/replay.c"});
    dip.refactor_pairs = {{root + "/original/decision.c",
                           root + "/core/decision.c"}};
    dip.paper = PaperRow{7188, 929, 7, 88, 1, 23, 2, 8, 2};
    systems.push_back(std::move(dip));
  }

  return systems;
}

SafeFlowOptions corpusAnalysisOptions() {
  SafeFlowOptions options;
  options.taint.implicit_critical_calls = {{"kill", 0}};
  return options;
}

MeasuredRow measureSystem(const CorpusSystem& system) {
  MeasuredRow row;

  SafeFlowDriver driver(corpusAnalysisOptions());
  for (const std::string& f : system.core_files) driver.addFile(f);
  driver.analyze();

  row.frontend_clean = !driver.hasFrontendErrors();
  row.loc_core = static_cast<int>(driver.stats().loc.code_lines);
  row.annotation_lines = static_cast<int>(driver.stats().annotation_lines);
  row.warnings = static_cast<int>(driver.report().warnings.size());
  row.error_dependencies = static_cast<int>(driver.report().dataErrorCount());
  row.false_positives =
      static_cast<int>(driver.report().controlErrorCount());
  row.restriction_violations =
      static_cast<int>(driver.report().restriction_violations.size());
  row.analysis_seconds = driver.stats().analysis_seconds;

  for (const std::string& f : system.all_files) {
    const auto loc = support::countLoc(slurp(f));
    row.loc_total += static_cast<int>(loc.code_lines);
  }
  for (const auto& [original, shipped] : system.refactor_pairs) {
    const auto d = support::diffLines(slurp(original), slurp(shipped));
    row.source_changes += static_cast<int>(d.changed());
  }
  return row;
}

}  // namespace safeflow
