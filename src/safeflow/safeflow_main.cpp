// The `safeflow` command-line tool: run the analysis over a core
// component's C files.
//
//   safeflow [options] file.c [file2.c ...]
//
//   -I <dir>            add an include directory
//   -D NAME[=VALUE]     predefine a macro
//   --mode=summaries    ESP-style parameterized summaries (default)
//   --mode=call-strings the prototype's context-cloning algorithm
//   --no-control-deps   do not track control dependence
//   --ranges            interprocedural value-range analysis (default on)
//   --no-ranges         disable it (pre-0.5.0 pipeline behavior)
//   --kill-critical     treat kill's pid argument as implicitly critical
//   --dot <file>        write the value-flow graph (Graphviz) to <file>
//   --trace <file>      write a Chrome trace-event JSON of the pipeline
//   --stats             print the pipeline statistics table to stderr
//   --stats-json <file> write pipeline statistics as JSON ("-" = stdout)
//   --time-budget <dur> wall-clock budget for the pipeline (e.g. 250ms)
//   --step-budget <n>   per-phase work-unit cap
//   --max-depth <n>     recursion / call-string context-depth cap
//   --jobs <n>          shard per-TU across n crash-isolated workers
//   --isolate           force worker isolation even with --jobs 1
//   --no-isolate        force the single-process whole-program path
//   --resume <file>     journal shard outcomes; rerun resumes from it
//   --worker-timeout <dur>  watchdog deadline per worker (default 60s)
//   --retries <n>       crash/timeout retries per shard (default 2)
//   --worker-stderr-cap <n> cap captured worker stderr at n bytes
//   --log-level <lvl>   error|warn|note|info|debug (default note)
//   --log-json          emit stderr logs as NDJSON events
//   --metrics-out <file> write Prometheus text exposition to <file>
//   --worker            (internal) single-shard worker protocol mode
//   --telemetry-spans   (internal) worker embeds trace spans in its
//                       report's telemetry section for trace stitching
//   --connect <sock>    send the analysis to a running safeflowd and
//                       print its byte-identical response; falls back
//                       to a local run when the daemon is unreachable
//   --deadline <dur>    give the daemon this long before the request
//                       expires (default 300s)
//   --daemon-status     print the daemon's status document and exit
//   --daemon-shutdown   ask the daemon to drain and exit
//   --cache             enable the result cache at .safeflow-cache/
//   --cache-dir <dir>   enable the result cache at <dir> (parents created)
//   --no-cache          force the cache off
//   --cache-max-mb <n>  cache size cap before LRU eviction (default 256)
//   --cache-stats       print cache hit/miss/write/eviction line to stderr
//   --summaries         enable function-level summary memoization at
//                       <cache-dir>/summaries (DESIGN.md §16)
//   --summaries-dir <dir>  enable it with an explicit store directory
//   --no-summaries      force summary memoization off
//   --summary-stats     print the summaries hit/miss line to stderr
//   --verify-summaries  re-solve everything cold after the memoized
//                       phases and assert state identity (exit 2 on
//                       divergence; implies --summaries)
//   --version           print the analyzer version and exit
//   --quiet             print only the summary line
//
// A file that fails to parse does not abort the run: the remaining files
// are analyzed and the report covers what survived (exit 2 still signals
// the parse failure unless data errors take precedence).
//
// Exit-code ladder (shared by the in-process and supervised paths; see
// exitCodeFor in driver.h): 1 error dependencies found > 2 usage/
// front-end errors (including crashed workers) > 3 clean-but-degraded
// (an analysis budget tripped; findings are valid but absences are
// unproven) > 0 clean.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "safeflow/cache_manager.h"
#include "safeflow/driver.h"
#include "safeflow/run_journal.h"
#include "safeflow/summary_store.h"
#include "safeflow/supervisor.h"
#include "support/fault_inject.h"
#include "support/flight_recorder.h"
#include "support/io_faults.h"
#include "support/json.h"
#include "support/limits.h"
#include "support/log.h"
#include "support/metrics.h"
#include "support/subprocess.h"
#include "support/unix_socket.h"

namespace {

void usage() {
  std::cerr
      << "usage: safeflow [options] file.c [file2.c ...]\n"
         "  -I <dir>            add an include directory\n"
         "  -D NAME[=VALUE]     predefine a macro\n"
         "  --mode=summaries|call-strings   interprocedural engine\n"
         "  --no-control-deps   disable control-dependence tracking\n"
         "  --ranges            interprocedural value-range analysis\n"
         "                      (default: on)\n"
         "  --no-ranges         disable the range analysis (pre-0.5.0\n"
         "                      behavior: no discharges, no edge pruning,\n"
         "                      no shm-bounds-const checks)\n"
         "  --alias=andersen|legacy   points-to engine: the Andersen\n"
         "                      constraint solver (default) or the\n"
         "                      pre-0.9.0 ad-hoc pass\n"
         "  --kill-critical     kill's pid argument is critical data\n"
         "  --dot <file>        write the value-flow graph to <file>\n"
         "  --json              print the report as JSON\n"
         "  --trace <file>      write a Chrome trace (chrome://tracing,\n"
         "                      Perfetto) of the analysis pipeline\n"
         "  --stats             print the statistics table to stderr\n"
         "  --stats-json <file> write statistics as JSON ('-' = stdout)\n"
         "  --time-budget <dur> wall-clock budget (e.g. 250ms, 2s)\n"
         "  --step-budget <n>   per-phase work-unit cap\n"
         "  --max-depth <n>     recursion/context-depth cap\n"
         "  --jobs <n>          analyze per-TU in n crash-isolated\n"
         "                      worker processes (implies --isolate)\n"
         "  --isolate           worker isolation even with --jobs 1\n"
         "  --no-isolate        single-process whole-program analysis\n"
         "  --resume <file>     journal per-shard outcomes to <file>;\n"
         "                      a rerun after a crash re-analyzes only\n"
         "                      unfinished shards (implies --isolate)\n"
         "  --worker-timeout <dur>  per-worker watchdog (default 60s)\n"
         "  --retries <n>       crash/timeout retries per shard\n"
         "  --worker-stderr-cap <n>  cap captured worker stderr at n\n"
         "                      bytes (default 65536; 0 = unlimited)\n"
         "  --log-level <lvl>   stderr log threshold: error, warn, note\n"
         "                      (default), info, debug\n"
         "  --log-json          emit stderr logs as NDJSON (one JSON\n"
         "                      object per line: ts, pid, level, shard,\n"
         "                      component, msg, key/values)\n"
         "  --metrics-out <file> write counters/gauges/percentiles as\n"
         "                      Prometheus text exposition to <file>\n"
         "  --cache             enable the incremental result cache at\n"
         "                      .safeflow-cache/\n"
         "  --cache-dir <dir>   enable the cache at <dir> (directories\n"
         "                      are created as needed)\n"
         "  --no-cache          force the cache off\n"
         "  --cache-max-mb <n>  size cap before LRU eviction (default 256,\n"
         "                      0 = unlimited)\n"
         "  --cache-stats       print the cache hit/miss line to stderr\n"
         "  --summaries         function-level summary memoization at\n"
         "                      <cache-dir>/summaries: warm runs re-solve\n"
         "                      only the functions an edit invalidated\n"
         "  --summaries-dir <dir>  summary store at <dir>\n"
         "  --no-summaries      force summary memoization off\n"
         "  --summary-stats     print the summaries hit/miss line to\n"
         "                      stderr\n"
         "  --verify-summaries  cold re-solve + state identity assert\n"
         "                      (exit 2 on divergence; implies\n"
         "                      --summaries)\n"
         "  --version           print the analyzer version and exit\n"
         "  --quiet             print only the summary line\n";
}

/// Export writer for --stats-json/--metrics-out/--trace documents: a
/// hardened write (EINTR/partial-write safe, fsync'd) that on any
/// failure — a real ENOSPC/EIO or an injected one — removes the partial
/// file and prints one diagnostic. The caller exits 2: a failed export
/// is a classified error, never a truncated-but-silent artifact.
bool writeFile(const std::string& path, const std::string& contents,
               const char* site) {
  const safeflow::support::io::IoStatus status =
      safeflow::support::io::writeFile(path, contents, site);
  if (!status.ok) {
    std::cerr << "safeflow: " << status.message << "\n";
    return false;
  }
  return true;
}

/// Emits a MergedReport the way the CLI emits any report: stats
/// documents, diagnostics on stderr, then JSON or text + the summary
/// line on stdout. Shared by the supervised path and the in-process
/// cache path so the two can never disagree on formatting.
int emitMergedOutputs(const safeflow::MergedReport& merged,
                      const std::string& stats_json_path, bool stats_table,
                      bool json, bool quiet,
                      const std::string& metrics_out_path = {}) {
  const std::string stats_json = merged.stats.renderJson() + "\n";
  if (!stats_json_path.empty()) {
    if (stats_json_path == "-") {
      std::cout << stats_json;
    } else if (!writeFile(stats_json_path, stats_json, "stats.out")) {
      return 2;
    }
  }
  if (!metrics_out_path.empty() &&
      !writeFile(metrics_out_path, merged.stats.renderPrometheus(),
                 "metrics.out")) {
    return 2;
  }
  if (stats_table) {
    std::cerr << merged.stats.renderTable();
  }
  // renderMergedRun is the byte-level contract shared with safeflowd:
  // whatever it returns is exactly what a daemon client would receive.
  const safeflow::RenderedRun rendered =
      safeflow::renderMergedRun(merged, json, quiet);
  if (!rendered.stderr_text.empty()) {
    std::cerr << rendered.stderr_text;
  }
  if (json) {
    std::cout << rendered.stdout_text;
  } else {
    // Keep stdout pure JSON when the stats document goes there.
    (stats_json_path == "-" ? std::cerr : std::cout)
        << rendered.stdout_text;
  }
  return rendered.exit_code;
}

/// The path workers are spawned from: /proc/self/exe when available (the
/// binary may have been moved since exec), argv[0] otherwise.
std::string selfExePath(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One safeflowd round trip: connect, send one NDJSON request line, read
/// one NDJSON response line. False (with `*error`) on any transport
/// failure — the caller falls back to a local run.
bool daemonRoundTrip(const std::string& socket_path,
                     const std::string& request,
                     double read_timeout_seconds, std::string* response,
                     std::string* error) {
  namespace support = safeflow::support;
  const int fd = support::connectUnixSocket(socket_path, error);
  if (fd < 0) return false;
  if (!support::writeAll(fd, request)) {
    ::close(fd);
    *error = "send failed (daemon gone?)";
    return false;
  }
  const support::LineIo rc = support::readLine(
      fd, response, /*max_bytes=*/64u << 20, read_timeout_seconds);
  ::close(fd);
  switch (rc) {
    case support::LineIo::kOk:
      return true;
    case support::LineIo::kTimeout:
      *error = "daemon response timed out";
      return false;
    case support::LineIo::kOversized:
      *error = "daemon response oversized";
      return false;
    default:
      *error = "daemon closed the connection before responding";
      return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeflow;

  // Real crashes (not fault-injected ones) dump the flight recorder to
  // stderr before re-raising; in a worker the supervisor attaches the
  // events to the shard's failure record.
  support::installCrashDumpHandlers();
  // SAFEFLOW_INJECT_IO: deterministic syscall-layer faults (ENOSPC, EIO,
  // torn renames) for the chaos tests. Inert unless the env is set.
  support::io::armIoFaultInjectionFromEnv();

  SafeFlowOptions options;
  std::vector<std::string> files;
  std::string dot_path;
  std::string trace_path;
  std::string stats_json_path;
  std::string metrics_out_path;
  bool quiet = false;
  bool json = false;
  bool stats_table = false;
  bool worker_mode = false;
  bool telemetry_spans = false;
  support::LogLevel log_level = support::LogLevel::kNote;
  bool log_json = false;
  // Observability flags re-forwarded to workers. Kept separate from
  // `passthrough`: that vector doubles as the cache key's analysis-flag
  // identity, and log settings must never change cache keys.
  std::vector<std::string> obs_args;
  bool isolate_forced = false;
  bool isolate_disabled = false;
  std::string resume_path;
  std::string connect_path;
  double client_deadline_seconds = 0.0;
  bool daemon_status = false;
  bool daemon_shutdown = false;
  bool cache_enabled = false;
  bool cache_disabled = false;
  bool cache_stats = false;
  std::string cache_dir = ".safeflow-cache";
  std::uint64_t cache_max_mb = 256;
  bool summaries_enabled = false;
  bool summaries_disabled = false;
  bool summary_stats = false;
  std::string summaries_dir;  // default derived from cache_dir below
  std::size_t jobs = 1;
  SupervisorOptions sup_options;
  // Analysis options forwarded verbatim to workers in supervised mode.
  std::vector<std::string> passthrough;
  auto forward = [&passthrough](std::initializer_list<const char*> args) {
    for (const char* a : args) passthrough.emplace_back(a);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-I" && i + 1 < argc) {
      options.include_dirs.emplace_back(argv[++i]);
      forward({"-I", argv[i]});
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string def = argv[++i];
      forward({"-D", argv[i]});
      const std::size_t eq = def.find('=');
      if (eq == std::string::npos) {
        options.defines.emplace_back(def, "1");
      } else {
        options.defines.emplace_back(def.substr(0, eq),
                                     def.substr(eq + 1));
      }
    } else if (arg == "--mode=summaries") {
      options.taint.mode = analysis::TaintOptions::Mode::kSummaries;
      forward({"--mode=summaries"});
    } else if (arg == "--mode=call-strings") {
      options.taint.mode = analysis::TaintOptions::Mode::kCallStrings;
      forward({"--mode=call-strings"});
    } else if (arg == "--no-control-deps") {
      options.taint.track_control_deps = false;
      forward({"--no-control-deps"});
    } else if (arg == "--ranges") {
      options.ranges.enabled = true;
      forward({"--ranges"});
    } else if (arg == "--no-ranges") {
      options.ranges.enabled = false;
      forward({"--no-ranges"});
    } else if (arg == "--alias=andersen") {
      options.alias.engine = analysis::AliasOptions::Engine::kAndersen;
      forward({"--alias=andersen"});
    } else if (arg == "--alias=legacy") {
      options.alias.engine = analysis::AliasOptions::Engine::kLegacy;
      forward({"--alias=legacy"});
    } else if (arg == "--kill-critical") {
      options.taint.implicit_critical_calls.emplace_back("kill", 0u);
      forward({"--kill-critical"});
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
      options.collect_trace = true;
    } else if (arg == "--stats") {
      stats_table = true;
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--time-budget" && i + 1 < argc) {
      if (!support::parseDuration(argv[++i],
                                  &options.budget.time_seconds)) {
        std::cerr << "invalid --time-budget '" << argv[i] << "'\n";
        return 2;
      }
      forward({"--time-budget", argv[i]});
    } else if (arg == "--step-budget" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::cerr << "invalid --step-budget '" << argv[i] << "'\n";
        return 2;
      }
      options.budget.phase_steps = n;
      forward({"--step-budget", argv[i]});
    } else if (arg == "--max-depth" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n == 0) {
        std::cerr << "invalid --max-depth '" << argv[i] << "'\n";
        return 2;
      }
      options.budget.max_depth = static_cast<unsigned>(n);
      options.taint.max_context_depth = static_cast<unsigned>(n);
      forward({"--max-depth", argv[i]});
    } else if (arg == "--jobs" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n == 0) {
        std::cerr << "invalid --jobs '" << argv[i] << "'\n";
        return 2;
      }
      jobs = static_cast<std::size_t>(n);
    } else if (arg == "--isolate") {
      isolate_forced = true;
    } else if (arg == "--no-isolate") {
      isolate_disabled = true;
    } else if (arg == "--resume" && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_path = argv[++i];
    } else if (arg == "--deadline" && i + 1 < argc) {
      if (!support::parseDuration(argv[++i], &client_deadline_seconds)) {
        std::cerr << "invalid --deadline '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--daemon-status") {
      daemon_status = true;
    } else if (arg == "--daemon-shutdown") {
      daemon_shutdown = true;
    } else if (arg == "--worker-timeout" && i + 1 < argc) {
      if (!support::parseDuration(argv[++i],
                                  &sup_options.worker_timeout_seconds)) {
        std::cerr << "invalid --worker-timeout '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--retries" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::cerr << "invalid --retries '" << argv[i] << "'\n";
        return 2;
      }
      sup_options.max_retries = static_cast<int>(n);
    } else if (arg == "--worker") {
      worker_mode = true;
    } else if (arg == "--telemetry-spans") {
      telemetry_spans = true;
      options.collect_trace = true;
    } else if (arg == "--worker-stderr-cap" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::cerr << "invalid --worker-stderr-cap '" << argv[i] << "'\n";
        return 2;
      }
      sup_options.worker_stderr_cap = static_cast<std::size_t>(n);
    } else if (arg == "--log-level" && i + 1 < argc) {
      if (!support::parseLogLevel(argv[++i], &log_level)) {
        std::cerr << "invalid --log-level '" << argv[i]
                  << "' (expected error|warn|note|info|debug)\n";
        return 2;
      }
      obs_args.emplace_back("--log-level");
      obs_args.emplace_back(argv[i]);
    } else if (arg == "--log-json") {
      log_json = true;
      obs_args.emplace_back("--log-json");
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out_path = argv[++i];
    } else if (arg == "--cache") {
      cache_enabled = true;
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_enabled = true;
      cache_dir = argv[++i];
    } else if (arg == "--no-cache") {
      cache_disabled = true;
    } else if (arg == "--cache-stats") {
      cache_stats = true;
    } else if (arg == "--summaries") {
      summaries_enabled = true;
    } else if (arg == "--summaries-dir" && i + 1 < argc) {
      summaries_enabled = true;
      summaries_dir = argv[++i];
    } else if (arg == "--no-summaries") {
      summaries_disabled = true;
    } else if (arg == "--summary-stats") {
      summary_stats = true;
    } else if (arg == "--verify-summaries") {
      summaries_enabled = true;
      options.summaries.verify = true;
    } else if (arg == "--cache-max-mb" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::cerr << "invalid --cache-max-mb '" << argv[i] << "'\n";
        return 2;
      }
      cache_max_mb = n;
    } else if (arg == "--version") {
      std::cout << "safeflow " << kAnalyzerVersion << "\n";
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  // Daemon control ops need a socket, not input files.
  if (daemon_status || daemon_shutdown) {
    if (connect_path.empty()) {
      std::cerr << "--daemon-status/--daemon-shutdown require "
                   "--connect <socket>\n";
      return 2;
    }
    const std::string request =
        daemon_status ? "{\"safeflowd\": 1, \"op\": \"status\"}\n"
                      : "{\"safeflowd\": 1, \"op\": \"shutdown\"}\n";
    std::string response, error;
    if (!daemonRoundTrip(connect_path, request, /*read_timeout_seconds=*/10.0,
                         &response, &error)) {
      std::cerr << "safeflow: " << error << "\n";
      return 2;
    }
    std::cout << response << "\n";
    support::json::Value parsed;
    std::string parse_error;
    const bool ok = support::json::parse(response, &parsed, &parse_error) &&
                    parsed.memberString("status") == "ok";
    return ok ? 0 : 2;
  }
  if (files.empty()) {
    usage();
    return 2;
  }

  if (isolate_forced && isolate_disabled) {
    std::cerr << "--isolate and --no-isolate are mutually exclusive\n";
    return 2;
  }

  // Function-level summary memoization (DESIGN.md §16). The store rides
  // under the cache directory by default. Deliberately NOT folded into
  // `passthrough`: that vector doubles as the TU-cache key identity, and
  // summary memoization never changes analysis output, so flipping it
  // must not invalidate TU-cache entries.
  const bool use_summaries = summaries_enabled && !summaries_disabled;
  if (use_summaries) {
    if (summaries_dir.empty()) summaries_dir = cache_dir + "/summaries";
    options.summaries.enabled = true;
    options.summaries.dir = summaries_dir;
  } else {
    options.summaries.verify = false;
  }
  std::vector<std::string> summary_args;
  if (use_summaries) {
    summary_args = {"--summaries-dir", summaries_dir};
    if (options.summaries.verify) summary_args.emplace_back("--verify-summaries");
    if (summary_stats) summary_args.emplace_back("--summary-stats");
  }
  if (!resume_path.empty()) {
    if (isolate_disabled) {
      std::cerr << "--resume requires the supervised path (remove "
                   "--no-isolate)\n";
      return 2;
    }
    // The journal records per-shard outcomes; only the supervised
    // per-TU path has shards to resume.
    isolate_forced = true;
  }

  // --connect: hand the analysis to a resident safeflowd. The response
  // carries the exact bytes the one-shot supervised CLI would print, so
  // the client only relays. Anything the daemon protocol cannot express
  // (--dot, --trace, stats/metrics documents, local cache control,
  // --no-isolate whole-program semantics) runs locally instead — with a
  // note, never silently. Transport failures and busy/draining shedding
  // also degrade to the local path, which forces --isolate so the
  // fallback keeps the daemon's per-TU crash-isolation semantics.
  if (!connect_path.empty() && !worker_mode) {
    support::Logger::instance().configure(log_level, log_json, "client");
    const bool expressible =
        dot_path.empty() && trace_path.empty() && stats_json_path.empty() &&
        metrics_out_path.empty() && !stats_table && !cache_enabled &&
        !cache_disabled && !cache_stats && !isolate_disabled &&
        resume_path.empty() && !summaries_enabled && !summaries_disabled &&
        !summary_stats;
    if (!expressible) {
      SAFEFLOW_LOG(support::LogLevel::kNote, "client",
                   "--connect cannot express --dot/--trace/--stats/cache/"
                   "summary flags; analyzing locally");
    } else {
      const double deadline_seconds =
          client_deadline_seconds > 0.0 ? client_deadline_seconds : 300.0;
      std::ostringstream request;
      request << "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": [";
      for (std::size_t i = 0; i < files.size(); ++i) {
        request << (i == 0 ? "" : ", ") << '"' << jsonEscape(files[i])
                << '"';
      }
      request << "], \"flags\": [";
      for (std::size_t i = 0; i < passthrough.size(); ++i) {
        request << (i == 0 ? "" : ", ") << '"' << jsonEscape(passthrough[i])
                << '"';
      }
      request << "], \"json\": " << (json ? "true" : "false")
              << ", \"quiet\": " << (quiet ? "true" : "false")
              << ", \"deadline_ms\": "
              << static_cast<std::uint64_t>(deadline_seconds * 1000.0)
              << "}\n";
      std::string fallback_reason;
      for (int attempt = 0; attempt < 3; ++attempt) {
        std::string response;
        if (!daemonRoundTrip(connect_path, request.str(),
                             deadline_seconds + 30.0, &response,
                             &fallback_reason)) {
          break;
        }
        support::json::Value parsed;
        std::string parse_error;
        if (!support::json::parse(response, &parsed, &parse_error) ||
            !parsed.isObject()) {
          fallback_reason = "unparseable daemon response";
          break;
        }
        const std::string status = parsed.memberString("status");
        if (status == "ok") {
          const support::json::Value* err_text = parsed.find("stderr");
          if (err_text != nullptr && !err_text->stringOr("").empty()) {
            std::cerr << err_text->stringOr("");
          }
          const support::json::Value* out_text = parsed.find("stdout");
          if (out_text != nullptr) std::cout << out_text->stringOr("");
          return static_cast<int>(parsed.memberNumber("exit_code", 2.0));
        }
        if (status == "busy") {
          // Shed under load: back off exponentially from the daemon's
          // hint (capped at 5s) with deterministic per-process jitter,
          // so a fleet of synchronized clients spreads out instead of
          // re-stampeding a shedding daemon on the same tick.
          const double hint_ms =
              parsed.memberNumber("retry_after_ms", 250.0);
          const double capped_ms =
              std::min(hint_ms * std::ldexp(1.0, attempt), 5000.0);
          const std::uint64_t seed =
              support::fnv1a(std::to_string(::getpid()) + ":" +
                             std::to_string(attempt));
          const double jitter =
              0.5 + 0.5 * static_cast<double>(seed % 1000) / 1000.0;
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(capped_ms *
                                                        jitter));
          fallback_reason = "daemon busy";
          continue;
        }
        if (status == "draining") {
          fallback_reason = "daemon draining";
          break;
        }
        fallback_reason =
            "daemon error: " + parsed.memberString("message", "unknown");
        break;
      }
      SAFEFLOW_LOG(support::LogLevel::kNote, "client",
                   "falling back to local analysis",
                   {{"reason", fallback_reason}});
    }
    // Match the daemon's per-TU isolated semantics in the fallback.
    if (!isolate_disabled) isolate_forced = true;
  }

  const bool supervised =
      !worker_mode && !isolate_disabled && (isolate_forced || jobs > 1);

  // One logger per process; the shard label distinguishes supervisor,
  // worker (labeled by its input), and plain in-process events.
  support::Logger::instance().configure(
      log_level, log_json,
      worker_mode ? files.front() : (supervised ? "supervisor" : ""));

  // Workers never consult the cache themselves — the supervisor does,
  // before spawning them. --dot/--trace need a live pipeline (cached
  // shards replay a past run: no graph, no spans), so either flag
  // disables the cache below — with an explicit note and a
  // cache.disabled_reason stat, never silently.
  const bool use_cache = cache_enabled && !cache_disabled && !worker_mode;
  CacheOptions cache_options;
  cache_options.enabled = use_cache;
  cache_options.dir = cache_dir;
  cache_options.max_bytes = cache_max_mb << 20;
  cache_options.include_dirs = options.include_dirs;
  cache_options.analysis_flags = passthrough;

  if (worker_mode) {
    // Single-shard worker protocol: emit the machine-readable report
    // (with worker extras) on stdout, diagnostics on stderr, and never
    // take the early no-files-parsed exit — the supervisor wants the
    // report of whatever survived recovery, like the in-process
    // multi-file path would have used. Fault injection arms only here.
    support::armWorkerFaultInjection(files.empty() ? "" : files.front());
    SafeFlowDriver driver(options);
    for (const std::string& f : files) driver.addFile(f);
    const auto& report = driver.analyze();
    // The telemetry section: this worker's pid, rusage, and — when the
    // supervisor asked via --telemetry-spans — the trace spans plus the
    // monotonic epoch they are relative to, for cross-process stitching.
    std::ostringstream telemetry;
    {
      const support::ResourceSample rusage = support::sampleResourceUsage();
      char num[64];
      telemetry << "{\n  \"telemetry_schema_version\": 1,\n  \"pid\": "
                << ::getpid();
      std::snprintf(num, sizeof num, "%.9g", rusage.user_seconds);
      telemetry << ",\n  \"resource\": {\"user_seconds\": " << num;
      std::snprintf(num, sizeof num, "%.9g", rusage.sys_seconds);
      telemetry << ", \"sys_seconds\": " << num
                << ", \"max_rss_kb\": " << rusage.max_rss_kb << "}";
      if (telemetry_spans && driver.trace() != nullptr) {
        telemetry << ",\n  \"epoch_steady_ns\": "
                  << driver.trace()->epochSteadyNs() << ",\n  \"spans\": "
                  << driver.trace()->spansToJsonArray();
      }
      telemetry << "\n}";
    }
    std::cout << report.renderJson(driver.sources(),
                                   driver.stats().renderJson(),
                                   /*worker_protocol=*/true,
                                   telemetry.str());
    if (driver.hasFrontendErrors()) {
      std::cerr << driver.diagnostics().render(driver.sources());
    }
    if (summary_stats && driver.summaryStore() != nullptr) {
      std::cerr << driver.summaryStore()->statsLine() << "\n";
    }
    if (driver.summaryVerifyFailed()) {
      std::cerr << "safeflow: summary verification failed\n";
      return 2;
    }
    return exitCodeFor(report.dataErrorCount(), driver.hasFrontendErrors(),
                       driver.degraded());
  }

  if (supervised) {
    if (!dot_path.empty()) {
      std::cerr << "--dot is not supported with --isolate/--jobs (the "
                   "per-TU shards have no whole-program value-flow graph; "
                   "run --no-isolate for it)\n";
      return 2;
    }
    sup_options.jobs = jobs;
    sup_options.worker_exe = selfExePath(argv[0]);
    sup_options.worker_args = passthrough;
    sup_options.worker_args.insert(sup_options.worker_args.end(),
                                   obs_args.begin(), obs_args.end());
    // Workers share the summary store (content-addressed, whole-entry
    // atomic writes — concurrent shards cannot tear it).
    sup_options.worker_args.insert(sup_options.worker_args.end(),
                                   summary_args.begin(), summary_args.end());
    sup_options.base_time_budget_seconds = options.budget.time_seconds;

    // --trace in supervised mode: the supervisor records its own
    // orchestration spans and asks every worker to report spans back,
    // then stitches one merged timeline (DESIGN.md §13).
    support::TraceCollector trace;
    if (!trace_path.empty()) {
      sup_options.trace = &trace;
      sup_options.worker_args.emplace_back("--telemetry-spans");
    }

    support::MetricsRegistry registry;
    CacheManager cache(cache_options, &registry);
    if (!trace_path.empty()) {
      // Cached shards replay a past run: no spans, stale clock epochs.
      // A traced run must see every lane live.
      cache.disable("trace");
    }
    if (cache.enabled()) sup_options.cache = &cache;

    // --resume: load (or start) the run journal. The run key binds the
    // journal to this exact invocation — analyzer version, analysis
    // flags, and every input's bytes — so a stale or foreign journal is
    // restarted fresh instead of replayed. An unopenable journal only
    // costs resumability: the analysis itself proceeds.
    RunJournal journal;
    if (!resume_path.empty()) {
      const std::string run_key =
          RunJournal::computeRunKey(passthrough, files);
      std::string journal_error;
      if (journal.open(resume_path, run_key, files.size(), &registry,
                       &journal_error)) {
        sup_options.journal = &journal;
      } else {
        SAFEFLOW_LOG(support::LogLevel::kWarn, "supervisor",
                     "cannot open run journal; continuing without "
                     "resume support",
                     {{"path", resume_path}, {"error", journal_error}});
      }
    }
    // SIGTERM/SIGINT forward to in-flight workers (SIGKILL after grace)
    // so an interrupted run never leaves orphaned --worker children.
    support::installTerminationForwarding();
    Supervisor supervisor(sup_options, &registry);
    MergedReport merged = supervisor.run(files);
    merged.stats.cache_disabled_reason = cache.disabledReason();
    if (!trace_path.empty() &&
        !writeFile(trace_path, merged.renderStitchedTrace(trace),
                   "trace.out")) {
      return 2;
    }
    if (cache_stats) std::cerr << cache.statsLine();
    const int code = emitMergedOutputs(merged, stats_json_path, stats_table,
                                       json, quiet, metrics_out_path);
    // Report the interruption the conventional shell way (128 + signal)
    // after the partial results are out; a drained run must not look
    // like a clean one.
    if (support::terminationRequested()) {
      return 128 + support::terminationSignal();
    }
    return code;
  }

  // Why a requested cache did not run (fault injection, --dot, --trace);
  // surfaced in the stats document either way.
  std::string cache_disabled_reason;
  if (use_cache) {
    // In-process incremental path: one cache entry keyed over the whole
    // input set (whole-program analysis does not decompose per TU — use
    // --jobs/--isolate for per-file granularity). Cold runs execute the
    // ordinary pipeline and persist the worker-protocol document; warm
    // runs replay it through the same merge/rendering path the
    // supervisor uses, so cold and warm output are byte-identical.
    support::MetricsRegistry registry;
    CacheManager cache(cache_options, &registry);
    // --dot/--trace need a live pipeline; a replayed entry has no graph
    // and no spans. The manager can also disarm itself (fault
    // injection). Fall through to the ordinary path below when disabled.
    if (!dot_path.empty()) {
      cache.disable("dot");
    } else if (!trace_path.empty()) {
      cache.disable("trace");
    }
    cache_disabled_reason = cache.disabledReason();
    if (cache.enabled()) {
      const std::string key = cache.keyFor(files);
      std::optional<CachedResult> cached = cache.lookup(key);
      bool internal_error = false;
      if (!cached.has_value()) {
        SafeFlowDriver driver(options);
        std::size_t files_ok = 0;
        for (const std::string& f : files) {
          if (driver.addFile(f)) ++files_ok;
        }
        if (files_ok == 0) {
          // Mirror the ordinary path: nothing parsed, nothing cached.
          std::cerr << driver.diagnostics().render(driver.sources());
          return 2;
        }
        const auto& report = driver.analyze();
        if (summary_stats && driver.summaryStore() != nullptr) {
          std::cerr << driver.summaryStore()->statsLine() << "\n";
        }
        if (driver.summaryVerifyFailed()) {
          // Never cache a run whose memoized state failed verification.
          std::cerr << "safeflow: summary verification failed\n";
          return 2;
        }
        const std::string doc =
            report.renderJson(driver.sources(),
                              driver.stats().renderJson(),
                              /*worker_protocol=*/true);
        CachedResult live;
        live.exit_code =
            exitCodeFor(report.dataErrorCount(),
                        driver.hasFrontendErrors(), driver.degraded());
        if (driver.hasFrontendErrors()) {
          live.stderr_text =
              driver.diagnostics().render(driver.sources());
        }
        cache.store(key, doc, live.exit_code, live.stderr_text);
        std::string err;
        if (support::json::parse(doc, &live.report, &err) &&
            live.report.isObject()) {
          cached = std::move(live);
        } else {
          internal_error = true;  // cannot happen for our own writer
        }
      }
      if (!internal_error) {
        std::vector<std::string> units = {files.front()};
        std::vector<WorkerOutcome> outcomes(1);
        outcomes[0].accepted = true;
        outcomes[0].report = std::move(cached->report);
        outcomes[0].exit_code = cached->exit_code;
        MergedReport merged = mergeWorkerOutcomes(
            units, outcomes, /*emit_stderr_headers=*/false);
        // The original run's diagnostics, replayed verbatim (no worker
        // headers on the in-process path).
        merged.diagnostics_text = cached->stderr_text;
        foldRegistrySnapshot(registry, &merged.stats);
        merged.stats.resource = support::sampleResourceUsage();
        if (cache_stats) std::cerr << cache.statsLine();
        return emitMergedOutputs(merged, stats_json_path, stats_table,
                                 json, quiet, metrics_out_path);
      }
      // Fall through to a plain cold run on the impossible round-trip
      // failure; correctness beats the wasted parse.
    }
  }

  SafeFlowDriver driver(options);
  std::size_t files_ok = 0;
  for (const std::string& f : files) {
    // Per-file isolation: a file that fails to parse yields diagnostics
    // and is skipped; the rest of the corpus is still analyzed.
    if (driver.addFile(f)) ++files_ok;
  }
  if (files_ok == 0) {
    // Nothing parsed at all; a partial trace still shows where the time
    // went before the failure.
    if (!trace_path.empty() && driver.trace() != nullptr) {
      writeFile(trace_path, driver.trace()->toChromeTraceJson(),
                "trace.out");
    }
    std::cerr << driver.diagnostics().render(driver.sources());
    return 2;
  }
  const auto& report = driver.analyze();
  if (!trace_path.empty() && driver.trace() != nullptr) {
    if (!writeFile(trace_path, driver.trace()->toChromeTraceJson(),
                   "trace.out")) {
      return 2;
    }
  }
  if (summary_stats && driver.summaryStore() != nullptr) {
    std::cerr << driver.summaryStore()->statsLine() << "\n";
  }
  if (driver.summaryVerifyFailed()) {
    std::cerr << driver.diagnostics().render(driver.sources());
    return 2;
  }
  // The one divergence from driver.stats(): record why a requested
  // cache did not run (the driver cannot know).
  SafeFlowStats stats = driver.stats();
  stats.cache_disabled_reason = cache_disabled_reason;
  if (!stats_json_path.empty()) {
    const std::string stats_json = stats.renderJson() + "\n";
    if (stats_json_path == "-") {
      std::cout << stats_json;
    } else if (!writeFile(stats_json_path, stats_json, "stats.out")) {
      return 2;
    }
  }
  if (!metrics_out_path.empty() &&
      !writeFile(metrics_out_path, stats.renderPrometheus(),
                 "metrics.out")) {
    return 2;
  }
  if (stats_table) {
    std::cerr << stats.renderTable();
  }
  // Keep stdout pure JSON when the stats document goes there.
  std::ostream& text_out =
      stats_json_path == "-" ? std::cerr : std::cout;

  if (driver.hasFrontendErrors()) {
    // Diagnostics go to stderr, but partial results are still reported
    // below; the exit code keeps signalling the parse failure.
    std::cerr << driver.diagnostics().render(driver.sources());
  }

  const int exit_code = exitCodeFor(
      report.dataErrorCount(), driver.hasFrontendErrors(), driver.degraded());

  if (json) {
    std::cout << report.renderJson(driver.sources(),
                                   driver.stats().renderJson());
    if (!dot_path.empty()) {
      std::ofstream out(dot_path);
      out << report.renderValueFlowDot(driver.sources());
    }
    return exit_code;
  }
  if (!quiet) {
    text_out << report.render(driver.sources());
  }
  text_out << "safeflow: " << report.warnings.size() << " warning(s), "
            << report.dataErrorCount() << " error dependency(ies), "
            << report.controlErrorCount()
            << " control-only (review manually), "
            << report.restriction_violations.size()
            << " restriction violation(s)\n";

  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    if (!out) {
      std::cerr << "cannot write " << dot_path << "\n";
      return 2;
    }
    out << report.renderValueFlowDot(driver.sources());
    text_out << "value-flow graph written to " << dot_path << "\n";
  }

  return exit_code;
}
