// The `safeflow` command-line tool: run the analysis over a core
// component's C files.
//
//   safeflow [options] file.c [file2.c ...]
//
//   -I <dir>            add an include directory
//   -D NAME[=VALUE]     predefine a macro
//   --mode=summaries    ESP-style parameterized summaries (default)
//   --mode=call-strings the prototype's context-cloning algorithm
//   --no-control-deps   do not track control dependence
//   --kill-critical     treat kill's pid argument as implicitly critical
//   --dot <file>        write the value-flow graph (Graphviz) to <file>
//   --quiet             print only the summary line
//
// Exit status: 0 clean, 1 error dependencies found, 2 usage/front-end
// errors.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "safeflow/driver.h"

namespace {

void usage() {
  std::cerr
      << "usage: safeflow [options] file.c [file2.c ...]\n"
         "  -I <dir>            add an include directory\n"
         "  -D NAME[=VALUE]     predefine a macro\n"
         "  --mode=summaries|call-strings   interprocedural engine\n"
         "  --no-control-deps   disable control-dependence tracking\n"
         "  --kill-critical     kill's pid argument is critical data\n"
         "  --dot <file>        write the value-flow graph to <file>\n"
         "  --json              print the report as JSON\n"
         "  --quiet             print only the summary line\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeflow;

  SafeFlowOptions options;
  std::vector<std::string> files;
  std::string dot_path;
  bool quiet = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-I" && i + 1 < argc) {
      options.include_dirs.emplace_back(argv[++i]);
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string def = argv[++i];
      const std::size_t eq = def.find('=');
      if (eq == std::string::npos) {
        options.defines.emplace_back(def, "1");
      } else {
        options.defines.emplace_back(def.substr(0, eq),
                                     def.substr(eq + 1));
      }
    } else if (arg == "--mode=summaries") {
      options.taint.mode = analysis::TaintOptions::Mode::kSummaries;
    } else if (arg == "--mode=call-strings") {
      options.taint.mode = analysis::TaintOptions::Mode::kCallStrings;
    } else if (arg == "--no-control-deps") {
      options.taint.track_control_deps = false;
    } else if (arg == "--kill-critical") {
      options.taint.implicit_critical_calls.emplace_back("kill", 0u);
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage();
    return 2;
  }

  SafeFlowDriver driver(options);
  for (const std::string& f : files) {
    if (!driver.addFile(f)) {
      std::cerr << driver.diagnostics().render(driver.sources());
      return 2;
    }
  }
  const auto& report = driver.analyze();
  if (driver.hasFrontendErrors()) {
    std::cerr << driver.diagnostics().render(driver.sources());
    return 2;
  }

  if (json) {
    std::cout << report.renderJson(driver.sources());
    if (!dot_path.empty()) {
      std::ofstream out(dot_path);
      out << report.renderValueFlowDot(driver.sources());
    }
    return report.dataErrorCount() > 0 ? 1 : 0;
  }
  if (!quiet) {
    std::cout << report.render(driver.sources());
  }
  std::cout << "safeflow: " << report.warnings.size() << " warning(s), "
            << report.dataErrorCount() << " error dependency(ies), "
            << report.controlErrorCount()
            << " control-only (review manually), "
            << report.restriction_violations.size()
            << " restriction violation(s)\n";

  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    if (!out) {
      std::cerr << "cannot write " << dot_path << "\n";
      return 2;
    }
    out << report.renderValueFlowDot(driver.sources());
    std::cout << "value-flow graph written to " << dot_path << "\n";
  }

  return report.dataErrorCount() > 0 ? 1 : 0;
}
