// The `safeflow` command-line tool: run the analysis over a core
// component's C files.
//
//   safeflow [options] file.c [file2.c ...]
//
//   -I <dir>            add an include directory
//   -D NAME[=VALUE]     predefine a macro
//   --mode=summaries    ESP-style parameterized summaries (default)
//   --mode=call-strings the prototype's context-cloning algorithm
//   --no-control-deps   do not track control dependence
//   --kill-critical     treat kill's pid argument as implicitly critical
//   --dot <file>        write the value-flow graph (Graphviz) to <file>
//   --trace <file>      write a Chrome trace-event JSON of the pipeline
//   --stats             print the pipeline statistics table to stderr
//   --stats-json <file> write pipeline statistics as JSON ("-" = stdout)
//   --time-budget <dur> wall-clock budget for the pipeline (e.g. 250ms)
//   --step-budget <n>   per-phase work-unit cap
//   --max-depth <n>     recursion / call-string context-depth cap
//   --jobs <n>          shard per-TU across n crash-isolated workers
//   --isolate           force worker isolation even with --jobs 1
//   --no-isolate        force the single-process whole-program path
//   --worker-timeout <dur>  watchdog deadline per worker (default 60s)
//   --retries <n>       crash/timeout retries per shard (default 2)
//   --worker            (internal) single-shard worker protocol mode
//   --quiet             print only the summary line
//
// A file that fails to parse does not abort the run: the remaining files
// are analyzed and the report covers what survived (exit 2 still signals
// the parse failure unless data errors take precedence).
//
// Exit-code ladder (shared by the in-process and supervised paths; see
// exitCodeFor in driver.h): 1 error dependencies found > 2 usage/
// front-end errors (including crashed workers) > 3 clean-but-degraded
// (an analysis budget tripped; findings are valid but absences are
// unproven) > 0 clean.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "safeflow/driver.h"
#include "safeflow/supervisor.h"
#include "support/fault_inject.h"
#include "support/limits.h"

namespace {

void usage() {
  std::cerr
      << "usage: safeflow [options] file.c [file2.c ...]\n"
         "  -I <dir>            add an include directory\n"
         "  -D NAME[=VALUE]     predefine a macro\n"
         "  --mode=summaries|call-strings   interprocedural engine\n"
         "  --no-control-deps   disable control-dependence tracking\n"
         "  --kill-critical     kill's pid argument is critical data\n"
         "  --dot <file>        write the value-flow graph to <file>\n"
         "  --json              print the report as JSON\n"
         "  --trace <file>      write a Chrome trace (chrome://tracing,\n"
         "                      Perfetto) of the analysis pipeline\n"
         "  --stats             print the statistics table to stderr\n"
         "  --stats-json <file> write statistics as JSON ('-' = stdout)\n"
         "  --time-budget <dur> wall-clock budget (e.g. 250ms, 2s)\n"
         "  --step-budget <n>   per-phase work-unit cap\n"
         "  --max-depth <n>     recursion/context-depth cap\n"
         "  --jobs <n>          analyze per-TU in n crash-isolated\n"
         "                      worker processes (implies --isolate)\n"
         "  --isolate           worker isolation even with --jobs 1\n"
         "  --no-isolate        single-process whole-program analysis\n"
         "  --worker-timeout <dur>  per-worker watchdog (default 60s)\n"
         "  --retries <n>       crash/timeout retries per shard\n"
         "  --quiet             print only the summary line\n";
}

bool writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << contents;
  return true;
}

/// The path workers are spawned from: /proc/self/exe when available (the
/// binary may have been moved since exec), argv[0] otherwise.
std::string selfExePath(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeflow;

  SafeFlowOptions options;
  std::vector<std::string> files;
  std::string dot_path;
  std::string trace_path;
  std::string stats_json_path;
  bool quiet = false;
  bool json = false;
  bool stats_table = false;
  bool worker_mode = false;
  bool isolate_forced = false;
  bool isolate_disabled = false;
  std::size_t jobs = 1;
  SupervisorOptions sup_options;
  // Analysis options forwarded verbatim to workers in supervised mode.
  std::vector<std::string> passthrough;
  auto forward = [&passthrough](std::initializer_list<const char*> args) {
    for (const char* a : args) passthrough.emplace_back(a);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-I" && i + 1 < argc) {
      options.include_dirs.emplace_back(argv[++i]);
      forward({"-I", argv[i]});
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string def = argv[++i];
      forward({"-D", argv[i]});
      const std::size_t eq = def.find('=');
      if (eq == std::string::npos) {
        options.defines.emplace_back(def, "1");
      } else {
        options.defines.emplace_back(def.substr(0, eq),
                                     def.substr(eq + 1));
      }
    } else if (arg == "--mode=summaries") {
      options.taint.mode = analysis::TaintOptions::Mode::kSummaries;
      forward({"--mode=summaries"});
    } else if (arg == "--mode=call-strings") {
      options.taint.mode = analysis::TaintOptions::Mode::kCallStrings;
      forward({"--mode=call-strings"});
    } else if (arg == "--no-control-deps") {
      options.taint.track_control_deps = false;
      forward({"--no-control-deps"});
    } else if (arg == "--kill-critical") {
      options.taint.implicit_critical_calls.emplace_back("kill", 0u);
      forward({"--kill-critical"});
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
      options.collect_trace = true;
    } else if (arg == "--stats") {
      stats_table = true;
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--time-budget" && i + 1 < argc) {
      if (!support::parseDuration(argv[++i],
                                  &options.budget.time_seconds)) {
        std::cerr << "invalid --time-budget '" << argv[i] << "'\n";
        return 2;
      }
      forward({"--time-budget", argv[i]});
    } else if (arg == "--step-budget" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::cerr << "invalid --step-budget '" << argv[i] << "'\n";
        return 2;
      }
      options.budget.phase_steps = n;
      forward({"--step-budget", argv[i]});
    } else if (arg == "--max-depth" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n == 0) {
        std::cerr << "invalid --max-depth '" << argv[i] << "'\n";
        return 2;
      }
      options.budget.max_depth = static_cast<unsigned>(n);
      options.taint.max_context_depth = static_cast<unsigned>(n);
      forward({"--max-depth", argv[i]});
    } else if (arg == "--jobs" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n == 0) {
        std::cerr << "invalid --jobs '" << argv[i] << "'\n";
        return 2;
      }
      jobs = static_cast<std::size_t>(n);
    } else if (arg == "--isolate") {
      isolate_forced = true;
    } else if (arg == "--no-isolate") {
      isolate_disabled = true;
    } else if (arg == "--worker-timeout" && i + 1 < argc) {
      if (!support::parseDuration(argv[++i],
                                  &sup_options.worker_timeout_seconds)) {
        std::cerr << "invalid --worker-timeout '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--retries" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::cerr << "invalid --retries '" << argv[i] << "'\n";
        return 2;
      }
      sup_options.max_retries = static_cast<int>(n);
    } else if (arg == "--worker") {
      worker_mode = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage();
    return 2;
  }

  if (isolate_forced && isolate_disabled) {
    std::cerr << "--isolate and --no-isolate are mutually exclusive\n";
    return 2;
  }
  const bool supervised =
      !worker_mode && !isolate_disabled && (isolate_forced || jobs > 1);

  if (worker_mode) {
    // Single-shard worker protocol: emit the machine-readable report
    // (with worker extras) on stdout, diagnostics on stderr, and never
    // take the early no-files-parsed exit — the supervisor wants the
    // report of whatever survived recovery, like the in-process
    // multi-file path would have used. Fault injection arms only here.
    support::armWorkerFaultInjection(files.empty() ? "" : files.front());
    SafeFlowDriver driver(options);
    for (const std::string& f : files) driver.addFile(f);
    const auto& report = driver.analyze();
    std::cout << report.renderJson(driver.sources(),
                                   driver.stats().renderJson(),
                                   /*worker_protocol=*/true);
    if (driver.hasFrontendErrors()) {
      std::cerr << driver.diagnostics().render(driver.sources());
    }
    return exitCodeFor(report.dataErrorCount(), driver.hasFrontendErrors(),
                       driver.degraded());
  }

  if (supervised) {
    if (!dot_path.empty() || !trace_path.empty()) {
      std::cerr << "--dot/--trace are not supported with --isolate/--jobs "
                   "(per-worker traces lose the cross-shard picture; run "
                   "--no-isolate for them)\n";
      return 2;
    }
    sup_options.jobs = jobs;
    sup_options.worker_exe = selfExePath(argv[0]);
    sup_options.worker_args = passthrough;
    sup_options.base_time_budget_seconds = options.budget.time_seconds;

    support::MetricsRegistry registry;
    Supervisor supervisor(sup_options, &registry);
    const MergedReport merged = supervisor.run(files);

    const std::string stats_json = merged.stats.renderJson() + "\n";
    if (!stats_json_path.empty()) {
      if (stats_json_path == "-") {
        std::cout << stats_json;
      } else if (!writeFile(stats_json_path, stats_json)) {
        return 2;
      }
    }
    if (stats_table) {
      std::cerr << merged.stats.renderTable();
    }
    std::ostream& text_out =
        stats_json_path == "-" ? std::cerr : std::cout;
    if (!merged.diagnostics_text.empty()) {
      std::cerr << merged.diagnostics_text;
    }
    const int exit_code = merged.exitCode();
    if (json) {
      std::cout << merged.renderJson(merged.stats.renderJson());
      return exit_code;
    }
    if (!quiet) {
      text_out << merged.render();
    }
    text_out << "safeflow: " << merged.warnings.size() << " warning(s), "
             << merged.dataErrorCount() << " error dependency(ies), "
             << merged.controlErrorCount()
             << " control-only (review manually), "
             << merged.restriction_violations.size()
             << " restriction violation(s)\n";
    return exit_code;
  }

  SafeFlowDriver driver(options);
  std::size_t files_ok = 0;
  for (const std::string& f : files) {
    // Per-file isolation: a file that fails to parse yields diagnostics
    // and is skipped; the rest of the corpus is still analyzed.
    if (driver.addFile(f)) ++files_ok;
  }
  if (files_ok == 0) {
    // Nothing parsed at all; a partial trace still shows where the time
    // went before the failure.
    if (!trace_path.empty() && driver.trace() != nullptr) {
      writeFile(trace_path, driver.trace()->toChromeTraceJson());
    }
    std::cerr << driver.diagnostics().render(driver.sources());
    return 2;
  }
  const auto& report = driver.analyze();
  if (!trace_path.empty() && driver.trace() != nullptr) {
    if (!writeFile(trace_path, driver.trace()->toChromeTraceJson())) return 2;
  }
  if (!stats_json_path.empty()) {
    const std::string stats_json = driver.stats().renderJson() + "\n";
    if (stats_json_path == "-") {
      std::cout << stats_json;
    } else if (!writeFile(stats_json_path, stats_json)) {
      return 2;
    }
  }
  if (stats_table) {
    std::cerr << driver.stats().renderTable();
  }
  // Keep stdout pure JSON when the stats document goes there.
  std::ostream& text_out =
      stats_json_path == "-" ? std::cerr : std::cout;

  if (driver.hasFrontendErrors()) {
    // Diagnostics go to stderr, but partial results are still reported
    // below; the exit code keeps signalling the parse failure.
    std::cerr << driver.diagnostics().render(driver.sources());
  }

  const int exit_code = exitCodeFor(
      report.dataErrorCount(), driver.hasFrontendErrors(), driver.degraded());

  if (json) {
    std::cout << report.renderJson(driver.sources(),
                                   driver.stats().renderJson());
    if (!dot_path.empty()) {
      std::ofstream out(dot_path);
      out << report.renderValueFlowDot(driver.sources());
    }
    return exit_code;
  }
  if (!quiet) {
    text_out << report.render(driver.sources());
  }
  text_out << "safeflow: " << report.warnings.size() << " warning(s), "
            << report.dataErrorCount() << " error dependency(ies), "
            << report.controlErrorCount()
            << " control-only (review manually), "
            << report.restriction_violations.size()
            << " restriction violation(s)\n";

  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    if (!out) {
      std::cerr << "cannot write " << dot_path << "\n";
      return 2;
    }
    out << report.renderValueFlowDot(driver.sources());
    text_out << "value-flow graph written to " << dot_path << "\n";
  }

  return exit_code;
}
