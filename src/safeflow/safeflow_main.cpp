// The `safeflow` command-line tool: run the analysis over a core
// component's C files.
//
//   safeflow [options] file.c [file2.c ...]
//
//   -I <dir>            add an include directory
//   -D NAME[=VALUE]     predefine a macro
//   --mode=summaries    ESP-style parameterized summaries (default)
//   --mode=call-strings the prototype's context-cloning algorithm
//   --no-control-deps   do not track control dependence
//   --kill-critical     treat kill's pid argument as implicitly critical
//   --dot <file>        write the value-flow graph (Graphviz) to <file>
//   --trace <file>      write a Chrome trace-event JSON of the pipeline
//   --stats             print the pipeline statistics table to stderr
//   --stats-json <file> write pipeline statistics as JSON ("-" = stdout)
//   --time-budget <dur> wall-clock budget for the pipeline (e.g. 250ms)
//   --step-budget <n>   per-phase work-unit cap
//   --max-depth <n>     recursion / call-string context-depth cap
//   --quiet             print only the summary line
//
// A file that fails to parse does not abort the run: the remaining files
// are analyzed and the report covers what survived (exit 2 still signals
// the parse failure unless data errors take precedence).
//
// Exit status: 0 clean, 1 error dependencies found, 2 usage/front-end
// errors, 3 clean-but-degraded (an analysis budget tripped; findings are
// valid but absences are unproven).
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "safeflow/driver.h"
#include "support/limits.h"

namespace {

void usage() {
  std::cerr
      << "usage: safeflow [options] file.c [file2.c ...]\n"
         "  -I <dir>            add an include directory\n"
         "  -D NAME[=VALUE]     predefine a macro\n"
         "  --mode=summaries|call-strings   interprocedural engine\n"
         "  --no-control-deps   disable control-dependence tracking\n"
         "  --kill-critical     kill's pid argument is critical data\n"
         "  --dot <file>        write the value-flow graph to <file>\n"
         "  --json              print the report as JSON\n"
         "  --trace <file>      write a Chrome trace (chrome://tracing,\n"
         "                      Perfetto) of the analysis pipeline\n"
         "  --stats             print the statistics table to stderr\n"
         "  --stats-json <file> write statistics as JSON ('-' = stdout)\n"
         "  --time-budget <dur> wall-clock budget (e.g. 250ms, 2s)\n"
         "  --step-budget <n>   per-phase work-unit cap\n"
         "  --max-depth <n>     recursion/context-depth cap\n"
         "  --quiet             print only the summary line\n";
}

bool writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << contents;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeflow;

  SafeFlowOptions options;
  std::vector<std::string> files;
  std::string dot_path;
  std::string trace_path;
  std::string stats_json_path;
  bool quiet = false;
  bool json = false;
  bool stats_table = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-I" && i + 1 < argc) {
      options.include_dirs.emplace_back(argv[++i]);
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string def = argv[++i];
      const std::size_t eq = def.find('=');
      if (eq == std::string::npos) {
        options.defines.emplace_back(def, "1");
      } else {
        options.defines.emplace_back(def.substr(0, eq),
                                     def.substr(eq + 1));
      }
    } else if (arg == "--mode=summaries") {
      options.taint.mode = analysis::TaintOptions::Mode::kSummaries;
    } else if (arg == "--mode=call-strings") {
      options.taint.mode = analysis::TaintOptions::Mode::kCallStrings;
    } else if (arg == "--no-control-deps") {
      options.taint.track_control_deps = false;
    } else if (arg == "--kill-critical") {
      options.taint.implicit_critical_calls.emplace_back("kill", 0u);
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
      options.collect_trace = true;
    } else if (arg == "--stats") {
      stats_table = true;
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--time-budget" && i + 1 < argc) {
      if (!support::parseDuration(argv[++i],
                                  &options.budget.time_seconds)) {
        std::cerr << "invalid --time-budget '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--step-budget" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::cerr << "invalid --step-budget '" << argv[i] << "'\n";
        return 2;
      }
      options.budget.phase_steps = n;
    } else if (arg == "--max-depth" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n == 0) {
        std::cerr << "invalid --max-depth '" << argv[i] << "'\n";
        return 2;
      }
      options.budget.max_depth = static_cast<unsigned>(n);
      options.taint.max_context_depth = static_cast<unsigned>(n);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage();
    return 2;
  }

  SafeFlowDriver driver(options);
  std::size_t files_ok = 0;
  for (const std::string& f : files) {
    // Per-file isolation: a file that fails to parse yields diagnostics
    // and is skipped; the rest of the corpus is still analyzed.
    if (driver.addFile(f)) ++files_ok;
  }
  if (files_ok == 0) {
    // Nothing parsed at all; a partial trace still shows where the time
    // went before the failure.
    if (!trace_path.empty() && driver.trace() != nullptr) {
      writeFile(trace_path, driver.trace()->toChromeTraceJson());
    }
    std::cerr << driver.diagnostics().render(driver.sources());
    return 2;
  }
  const auto& report = driver.analyze();
  if (!trace_path.empty() && driver.trace() != nullptr) {
    if (!writeFile(trace_path, driver.trace()->toChromeTraceJson())) return 2;
  }
  if (!stats_json_path.empty()) {
    const std::string stats_json = driver.stats().renderJson() + "\n";
    if (stats_json_path == "-") {
      std::cout << stats_json;
    } else if (!writeFile(stats_json_path, stats_json)) {
      return 2;
    }
  }
  if (stats_table) {
    std::cerr << driver.stats().renderTable();
  }
  // Keep stdout pure JSON when the stats document goes there.
  std::ostream& text_out =
      stats_json_path == "-" ? std::cerr : std::cout;

  if (driver.hasFrontendErrors()) {
    // Diagnostics go to stderr, but partial results are still reported
    // below; the exit code keeps signalling the parse failure.
    std::cerr << driver.diagnostics().render(driver.sources());
  }

  // Exit-code precedence: data errors (1) > front-end errors (2) >
  // budget degradation (3) > clean (0).
  const int exit_code = report.dataErrorCount() > 0 ? 1
                        : driver.hasFrontendErrors() ? 2
                        : driver.degraded()          ? 3
                                                     : 0;

  if (json) {
    std::cout << report.renderJson(driver.sources(),
                                   driver.stats().renderJson());
    if (!dot_path.empty()) {
      std::ofstream out(dot_path);
      out << report.renderValueFlowDot(driver.sources());
    }
    return exit_code;
  }
  if (!quiet) {
    text_out << report.render(driver.sources());
  }
  text_out << "safeflow: " << report.warnings.size() << " warning(s), "
            << report.dataErrorCount() << " error dependency(ies), "
            << report.controlErrorCount()
            << " control-only (review manually), "
            << report.restriction_violations.size()
            << " restriction violation(s)\n";

  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    if (!out) {
      std::cerr << "cannot write " << dot_path << "\n";
      return 2;
    }
    out << report.renderValueFlowDot(driver.sources());
    text_out << "value-flow graph written to " << dot_path << "\n";
  }

  return exit_code;
}
