// The `safeflow` command-line tool: run the analysis over a core
// component's C files.
//
//   safeflow [options] file.c [file2.c ...]
//
//   -I <dir>            add an include directory
//   -D NAME[=VALUE]     predefine a macro
//   --mode=summaries    ESP-style parameterized summaries (default)
//   --mode=call-strings the prototype's context-cloning algorithm
//   --no-control-deps   do not track control dependence
//   --kill-critical     treat kill's pid argument as implicitly critical
//   --dot <file>        write the value-flow graph (Graphviz) to <file>
//   --trace <file>      write a Chrome trace-event JSON of the pipeline
//   --stats             print the pipeline statistics table to stderr
//   --stats-json <file> write pipeline statistics as JSON ("-" = stdout)
//   --quiet             print only the summary line
//
// Exit status: 0 clean, 1 error dependencies found, 2 usage/front-end
// errors.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "safeflow/driver.h"

namespace {

void usage() {
  std::cerr
      << "usage: safeflow [options] file.c [file2.c ...]\n"
         "  -I <dir>            add an include directory\n"
         "  -D NAME[=VALUE]     predefine a macro\n"
         "  --mode=summaries|call-strings   interprocedural engine\n"
         "  --no-control-deps   disable control-dependence tracking\n"
         "  --kill-critical     kill's pid argument is critical data\n"
         "  --dot <file>        write the value-flow graph to <file>\n"
         "  --json              print the report as JSON\n"
         "  --trace <file>      write a Chrome trace (chrome://tracing,\n"
         "                      Perfetto) of the analysis pipeline\n"
         "  --stats             print the statistics table to stderr\n"
         "  --stats-json <file> write statistics as JSON ('-' = stdout)\n"
         "  --quiet             print only the summary line\n";
}

bool writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << contents;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeflow;

  SafeFlowOptions options;
  std::vector<std::string> files;
  std::string dot_path;
  std::string trace_path;
  std::string stats_json_path;
  bool quiet = false;
  bool json = false;
  bool stats_table = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-I" && i + 1 < argc) {
      options.include_dirs.emplace_back(argv[++i]);
    } else if (arg == "-D" && i + 1 < argc) {
      const std::string def = argv[++i];
      const std::size_t eq = def.find('=');
      if (eq == std::string::npos) {
        options.defines.emplace_back(def, "1");
      } else {
        options.defines.emplace_back(def.substr(0, eq),
                                     def.substr(eq + 1));
      }
    } else if (arg == "--mode=summaries") {
      options.taint.mode = analysis::TaintOptions::Mode::kSummaries;
    } else if (arg == "--mode=call-strings") {
      options.taint.mode = analysis::TaintOptions::Mode::kCallStrings;
    } else if (arg == "--no-control-deps") {
      options.taint.track_control_deps = false;
    } else if (arg == "--kill-critical") {
      options.taint.implicit_critical_calls.emplace_back("kill", 0u);
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
      options.collect_trace = true;
    } else if (arg == "--stats") {
      stats_table = true;
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    usage();
    return 2;
  }

  SafeFlowDriver driver(options);
  for (const std::string& f : files) {
    if (!driver.addFile(f)) {
      // A partial trace still shows where the time went before the
      // failure.
      if (!trace_path.empty() && driver.trace() != nullptr) {
        writeFile(trace_path, driver.trace()->toChromeTraceJson());
      }
      std::cerr << driver.diagnostics().render(driver.sources());
      return 2;
    }
  }
  const auto& report = driver.analyze();
  if (!trace_path.empty() && driver.trace() != nullptr) {
    if (!writeFile(trace_path, driver.trace()->toChromeTraceJson())) return 2;
  }
  if (!stats_json_path.empty()) {
    const std::string stats_json = driver.stats().renderJson() + "\n";
    if (stats_json_path == "-") {
      std::cout << stats_json;
    } else if (!writeFile(stats_json_path, stats_json)) {
      return 2;
    }
  }
  if (stats_table) {
    std::cerr << driver.stats().renderTable();
  }
  // Keep stdout pure JSON when the stats document goes there.
  std::ostream& text_out =
      stats_json_path == "-" ? std::cerr : std::cout;

  if (driver.hasFrontendErrors()) {
    std::cerr << driver.diagnostics().render(driver.sources());
    return 2;
  }

  if (json) {
    std::cout << report.renderJson(driver.sources(),
                                   driver.stats().renderJson());
    if (!dot_path.empty()) {
      std::ofstream out(dot_path);
      out << report.renderValueFlowDot(driver.sources());
    }
    return report.dataErrorCount() > 0 ? 1 : 0;
  }
  if (!quiet) {
    text_out << report.render(driver.sources());
  }
  text_out << "safeflow: " << report.warnings.size() << " warning(s), "
            << report.dataErrorCount() << " error dependency(ies), "
            << report.controlErrorCount()
            << " control-only (review manually), "
            << report.restriction_violations.size()
            << " restriction violation(s)\n";

  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    if (!out) {
      std::cerr << "cannot write " << dot_path << "\n";
      return 2;
    }
    out << report.renderValueFlowDot(driver.sources());
    text_out << "value-flow graph written to " << dot_path << "\n";
  }

  return report.dataErrorCount() > 0 ? 1 : 0;
}
