// safeflowd: the resident analysis daemon (DESIGN.md §14).
//
//   safeflowd [options]
//
//   --socket <path>       Unix socket to listen on (safeflowd.sock)
//   --jobs <n>            worker pool width per analyze request
//   --max-inflight <n>    concurrent analyses before queuing
//   --max-queue <n>       queued analyses before shedding `busy`
//   --max-rss-mb <n>      shed while resident set exceeds n MiB (0 = off)
//   --pressure-interval <dur> pressure watchdog sample period (1s; 0 = off)
//   --max-open-fds <n>    fd budget for the pressure ladder (0 = off)
//   --min-disk-free-mb <n> cache-dir free-space floor for the ladder
//   --worker-timeout <dur> per-worker watchdog (default 60s)
//   --retries <n>         crash/timeout retries per shard
//   --worker-stderr-cap <n> cap captured worker stderr at n bytes
//   --worker-exe <path>   safeflow binary to spawn (default: sibling)
//   --cache-dir <dir>     result cache directory (default .safeflow-cache)
//   --no-cache            run without the result cache
//   --cache-max-mb <n>    cache size cap before LRU eviction
//   --log-level <lvl>     error|warn|note|info|debug
//   --log-json            NDJSON logs on stderr
//   --metrics-out <file>  Prometheus exposition flushed at drain
//
// SIGTERM/SIGINT drain gracefully (finish in-flight, reject new, flush
// metrics, exit 0). A SIGKILLed daemon restarts clean: the stale socket
// is swept and the cache dir reattached warm.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "safeflow/daemon.h"
#include "support/flight_recorder.h"
#include "support/io_faults.h"
#include "support/limits.h"
#include "support/log.h"

namespace {

safeflow::Daemon* g_daemon = nullptr;

extern "C" void terminationHandler(int) {
  if (g_daemon != nullptr) g_daemon->requestStop();
}

void usage() {
  std::cerr
      << "usage: safeflowd [options]\n"
         "  --socket <path>        listen socket (default safeflowd.sock)\n"
         "  --jobs <n>             workers per analyze request (default 2)\n"
         "  --max-inflight <n>     concurrent analyses (default 2)\n"
         "  --max-queue <n>        queued analyses before `busy` (default 8)\n"
         "  --max-rss-mb <n>       RSS shed threshold, 0 = off (default 0)\n"
         "  --pressure-interval <dur> watchdog period, 0 = off (default 1s)\n"
         "  --max-open-fds <n>     fd budget for pressure, 0 = off\n"
         "  --min-disk-free-mb <n> cache-dir free floor, 0 = off\n"
         "  --worker-timeout <dur> per-worker watchdog (default 60s)\n"
         "  --retries <n>          retries per shard (default 2)\n"
         "  --worker-stderr-cap <n> stderr capture cap (default 65536)\n"
         "  --worker-exe <path>    safeflow binary (default: sibling)\n"
         "  --cache-dir <dir>      cache dir (default .safeflow-cache)\n"
         "  --no-cache             disable the result cache\n"
         "  --cache-max-mb <n>     cache size cap (default 256)\n"
         "  --log-level <lvl>      error|warn|note|info|debug\n"
         "  --log-json             NDJSON logs\n"
         "  --metrics-out <file>   flush Prometheus metrics at drain\n";
}

/// Default worker: the `safeflow` binary next to this executable.
std::string siblingSafeflow(const char* argv0) {
  char buf[4096];
  std::string self;
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    self = buf;
  } else {
    self = argv0;
  }
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "safeflow";
  return self.substr(0, slash + 1) + "safeflow";
}

bool parseUnsigned(const char* text, unsigned long long* out) {
  char* end = nullptr;
  *out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeflow;

  support::installCrashDumpHandlers();
  support::io::armIoFaultInjectionFromEnv();

  DaemonOptions options;
  options.cache.enabled = true;
  support::LogLevel log_level = support::LogLevel::kNote;
  bool log_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    unsigned long long n = 0;
    if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!parseUnsigned(argv[++i], &n) || n == 0) {
        std::cerr << "invalid --jobs '" << argv[i] << "'\n";
        return 2;
      }
      options.jobs = static_cast<std::size_t>(n);
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      if (!parseUnsigned(argv[++i], &n) || n == 0) {
        std::cerr << "invalid --max-inflight '" << argv[i] << "'\n";
        return 2;
      }
      options.max_inflight = static_cast<std::size_t>(n);
    } else if (arg == "--max-queue" && i + 1 < argc) {
      if (!parseUnsigned(argv[++i], &n)) {
        std::cerr << "invalid --max-queue '" << argv[i] << "'\n";
        return 2;
      }
      options.max_queue = static_cast<std::size_t>(n);
    } else if (arg == "--max-rss-mb" && i + 1 < argc) {
      if (!parseUnsigned(argv[++i], &n)) {
        std::cerr << "invalid --max-rss-mb '" << argv[i] << "'\n";
        return 2;
      }
      options.max_rss_mb = n;
    } else if (arg == "--pressure-interval" && i + 1 < argc) {
      if (!support::parseDuration(argv[++i],
                                  &options.pressure_interval_seconds)) {
        std::cerr << "invalid --pressure-interval '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--max-open-fds" && i + 1 < argc) {
      if (!parseUnsigned(argv[++i], &n)) {
        std::cerr << "invalid --max-open-fds '" << argv[i] << "'\n";
        return 2;
      }
      options.max_open_fds = n;
    } else if (arg == "--min-disk-free-mb" && i + 1 < argc) {
      if (!parseUnsigned(argv[++i], &n)) {
        std::cerr << "invalid --min-disk-free-mb '" << argv[i] << "'\n";
        return 2;
      }
      options.min_disk_free_mb = n;
    } else if (arg == "--worker-timeout" && i + 1 < argc) {
      if (!support::parseDuration(argv[++i],
                                  &options.worker_timeout_seconds)) {
        std::cerr << "invalid --worker-timeout '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--retries" && i + 1 < argc) {
      if (!parseUnsigned(argv[++i], &n)) {
        std::cerr << "invalid --retries '" << argv[i] << "'\n";
        return 2;
      }
      options.max_retries = static_cast<int>(n);
    } else if (arg == "--worker-stderr-cap" && i + 1 < argc) {
      if (!parseUnsigned(argv[++i], &n)) {
        std::cerr << "invalid --worker-stderr-cap '" << argv[i] << "'\n";
        return 2;
      }
      options.worker_stderr_cap = static_cast<std::size_t>(n);
    } else if (arg == "--worker-exe" && i + 1 < argc) {
      options.worker_exe = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      options.cache.enabled = true;
      options.cache.dir = argv[++i];
    } else if (arg == "--no-cache") {
      options.cache.enabled = false;
    } else if (arg == "--cache-max-mb" && i + 1 < argc) {
      if (!parseUnsigned(argv[++i], &n)) {
        std::cerr << "invalid --cache-max-mb '" << argv[i] << "'\n";
        return 2;
      }
      options.cache.max_bytes = n << 20;
    } else if (arg == "--log-level" && i + 1 < argc) {
      if (!support::parseLogLevel(argv[++i], &log_level)) {
        std::cerr << "invalid --log-level '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--log-json") {
      log_json = true;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      options.metrics_out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      usage();
      return 2;
    }
  }
  if (options.worker_exe.empty()) {
    options.worker_exe = siblingSafeflow(argv[0]);
  }

  support::Logger::instance().configure(log_level, log_json, "safeflowd");

  Daemon daemon(std::move(options));
  std::string error;
  if (!daemon.start(&error)) {
    std::cerr << "safeflowd: " << error << "\n";
    return 2;
  }

  // SIGTERM/SIGINT drain; SIGPIPE must never kill the daemon (writeAll
  // already uses MSG_NOSIGNAL, this is belt and braces for stdio).
  g_daemon = &daemon;
  struct sigaction action{};
  action.sa_handler = terminationHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  return daemon.serve();
}
