#include "safeflow/driver.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "analysis/alias.h"
#include "analysis/shm_propagation.h"
#include "analysis/shm_regions.h"
#include "analysis/summaries.h"
#include "ir/callgraph.h"
#include "ir/lowering.h"
#include "ir/ssa.h"
#include "safeflow/summary_store.h"
#include "support/fault_inject.h"
#include "support/log.h"

namespace safeflow {

namespace {

/// Pipeline phases in execution order; phase durations are recorded under
/// "phase.<name>" by each stage itself (see support/metrics.h).
constexpr const char* kPhaseOrder[] = {
    "frontend",     "lowering",        "ssa",   "shm_regions",
    "callgraph",    "ranges",          "shm_propagation",
    "restrictions", "alias",           "taint", "report",
};

std::size_t lineSpan(const std::string& text) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.end(), '\n'));
}

void countAnnotationsInStmt(const cfront::Stmt* stmt, SafeFlowStats& stats) {
  if (stmt == nullptr) return;
  switch (stmt->kind()) {
    case cfront::Stmt::Kind::kAnnotation: {
      const auto& a =
          static_cast<const cfront::AnnotationStmt*>(stmt)->annotation();
      ++stats.annotation_count;
      stats.annotation_lines += lineSpan(a.text);
      return;
    }
    case cfront::Stmt::Kind::kCompound:
      for (const auto& s :
           static_cast<const cfront::CompoundStmt*>(stmt)->stmts()) {
        countAnnotationsInStmt(s.get(), stats);
      }
      return;
    case cfront::Stmt::Kind::kIf: {
      const auto* s = static_cast<const cfront::IfStmt*>(stmt);
      countAnnotationsInStmt(s->thenStmt(), stats);
      countAnnotationsInStmt(s->elseStmt(), stats);
      return;
    }
    case cfront::Stmt::Kind::kWhile:
      countAnnotationsInStmt(
          static_cast<const cfront::WhileStmt*>(stmt)->body(), stats);
      return;
    case cfront::Stmt::Kind::kDo:
      countAnnotationsInStmt(
          static_cast<const cfront::DoStmt*>(stmt)->body(), stats);
      return;
    case cfront::Stmt::Kind::kFor: {
      const auto* s = static_cast<const cfront::ForStmt*>(stmt);
      countAnnotationsInStmt(s->init(), stats);
      countAnnotationsInStmt(s->body(), stats);
      return;
    }
    case cfront::Stmt::Kind::kSwitch:
      countAnnotationsInStmt(
          static_cast<const cfront::SwitchStmt*>(stmt)->body(), stats);
      return;
    default:
      return;
  }
}

/// Everything that changes what the memoized phases compute must be in
/// the summary key fingerprint: a ranges/taint/alias option flip must
/// invalidate every entry, exactly like a version bump.
std::string summaryConfigFingerprint(const SafeFlowOptions& options) {
  std::string fp = kAnalyzerVersion;
  fp += "|ranges:";
  fp += options.ranges.enabled ? "1" : "0";
  fp += "," + std::to_string(options.ranges.widen_after);
  fp += "," + std::to_string(options.ranges.max_module_rounds);
  fp += "|alias:";
  fp += options.alias.field_sensitive ? "1" : "0";
  fp += options.alias.engine == analysis::AliasOptions::Engine::kAndersen
            ? ",andersen"
            : ",legacy";
  fp += "|taint:";
  fp += options.taint.track_control_deps ? "1" : "0";
  for (const auto& [name, arg] : options.taint.implicit_critical_calls) {
    fp += ";" + name + "#" + std::to_string(arg);
  }
  for (const auto& rc : options.taint.receive_calls) {
    fp += ";" + rc.name + "@" + std::to_string(rc.socket_arg) + "," +
          std::to_string(rc.buffer_arg);
  }
  return fp;
}

/// Summary memoization is exact only when the run is deterministic and
/// complete; configurations that break either assumption disable it
/// with a recorded reason instead of risking a wrong replay.
std::string summariesDisabledReason(const SafeFlowOptions& options) {
  if (options.budget.limited()) return "budget";
  if (options.taint.mode == analysis::TaintOptions::Mode::kCallStrings) {
    return "call-strings";
  }
  if (support::faultInjectionArmed()) return "fault-injection";
  return "";
}

}  // namespace

SafeFlowDriver::SafeFlowDriver(SafeFlowOptions options)
    : options_(std::move(options)),
      budget_(options_.budget),
      frontend_(options_.include_dirs) {
  if (options_.collect_trace) {
    trace_ = std::make_unique<support::TraceCollector>();
  }
  observer_.metrics = &metrics_;
  observer_.trace = trace_.get();
  for (const auto& [name, value] : options_.defines) {
    frontend_.predefine(name, value);
  }
}

SafeFlowDriver::~SafeFlowDriver() = default;

void SafeFlowDriver::beginPipeline() {
  if (pipeline_started_) return;
  pipeline_started_ = true;
  budget_.start();  // the wall-clock budget covers the whole pipeline
  if (trace_ != nullptr) root_span_ = trace_->beginSpan("safeflow.pipeline");
}

bool SafeFlowDriver::addFile(const std::string& path) {
  const support::ScopedObserver install(&observer_);
  beginPipeline();
  ++stats_.files;
  support::faultInjectionPoint("frontend");
  const bool ok = frontend_.parseFile(path);
  if (!ok) {
    frontend_errors_ = true;
    failed_files_.push_back(path);
  }
  // Aggregate LOC over the file as it exists on disk.
  support::SourceManager probe;
  if (auto id = probe.addFile(path)) {
    const auto loc = support::countLoc(probe.contents(*id));
    stats_.loc.total_lines += loc.total_lines;
    stats_.loc.code_lines += loc.code_lines;
    stats_.loc.comment_lines += loc.comment_lines;
    stats_.loc.blank_lines += loc.blank_lines;
  }
  return ok;
}

bool SafeFlowDriver::addSource(std::string name, std::string text) {
  const support::ScopedObserver install(&observer_);
  beginPipeline();
  ++stats_.files;
  const auto loc = support::countLoc(text);
  stats_.loc.total_lines += loc.total_lines;
  stats_.loc.code_lines += loc.code_lines;
  stats_.loc.comment_lines += loc.comment_lines;
  stats_.loc.blank_lines += loc.blank_lines;
  const std::string display_name = name;
  const bool ok = frontend_.parseBuffer(std::move(name), std::move(text));
  if (!ok) {
    frontend_errors_ = true;
    failed_files_.push_back(display_name);
  }
  return ok;
}

const support::SourceManager& SafeFlowDriver::sources() const {
  return frontend_.sources();
}

const support::DiagnosticEngine& SafeFlowDriver::diagnostics() const {
  return frontend_.diagnostics();
}

void SafeFlowDriver::countAnnotations() {
  for (const auto& fn : frontend_.unit().functions()) {
    for (const auto& a : fn->entryAnnotations()) {
      ++stats_.annotation_count;
      stats_.annotation_lines += lineSpan(a.text);
    }
    countAnnotationsInStmt(fn->body(), stats_);
  }
}

const analysis::SafeFlowReport& SafeFlowDriver::analyze() {
  if (analyzed_) return report_;
  analyzed_ = true;
  const support::ScopedObserver install(&observer_);
  beginPipeline();
  const auto start = std::chrono::steady_clock::now();

  auto& diags = frontend_.diagnostics();

  module_ = std::make_unique<ir::Module>(frontend_.types());
  support::faultInjectionPoint("lowering");
  ir::Lowering lowering(frontend_.unit(), *module_, diags);
  if (!lowering.run()) {
    // Per-file isolation: lowering recovers from bad constructs with
    // undef values and seals every block, so the partial module is
    // structurally sound. Keep going and report what can be analyzed.
    frontend_errors_ = true;
  }
  support::faultInjectionPoint("ssa");
  ir::promoteModuleToSsa(*module_);

  stats_.functions = module_->functions().size();
  for (const auto& fn : module_->functions()) {
    if (fn->annotations.is_monitor) ++stats_.monitor_functions;
    if (fn->annotations.is_shminit) ++stats_.init_functions;
  }

  support::faultInjectionPoint("shm_regions");
  const auto regions = analysis::ShmRegionTable::build(*module_, diags);
  stats_.shm_regions = regions.regions().size();
  stats_.noncore_regions = regions.noncoreCount();

  support::faultInjectionPoint("callgraph");
  ir::CallGraph callgraph(*module_);

  // Function-level summary memoization (DESIGN.md §16): bind this run's
  // Merkle keys and hand each interprocedural phase its memo seam. Off
  // by default; disabled with a recorded reason under configurations
  // where a replay could diverge from a cold solve.
  std::unique_ptr<analysis::ModuleIndex> summary_index;
  analysis::PhaseMemoHooks shm_memo, ranges_memo, taint_memo;
  SummaryStore* summaries = nullptr;
  if (options_.summaries.enabled) {
    const std::string reason = summariesDisabledReason(options_);
    if (!reason.empty()) {
      stats_.summaries_disabled_reason = reason;
      summary_store_ = nullptr;
    } else {
      if (summary_store_ == nullptr) {
        owned_summary_store_ = std::make_unique<SummaryStore>(
            options_.summaries.dir, kAnalyzerVersion);
        owned_summary_store_->recoverDir();
        summary_store_ = owned_summary_store_.get();
      }
      summaries = summary_store_;
      summary_index = std::make_unique<analysis::ModuleIndex>(*module_);
      summaries->beginRun(analysis::computeFunctionKeys(
          *module_, callgraph, summaryConfigFingerprint(options_)));
      shm_memo = {summaries->bank(SummaryPhase::kShm), summary_index.get()};
      ranges_memo = {summaries->bank(SummaryPhase::kRanges),
                     summary_index.get()};
      taint_memo = {summaries->bank(SummaryPhase::kTaint),
                    summary_index.get()};
    }
  }

  // The value-range pass runs right after the call graph so every later
  // phase can query it; when disabled it is skipped entirely (no fault
  // point, no phase timer, no counters) so --no-ranges output is
  // byte-identical to pre-0.5.0 runs.
  analysis::RangeAnalysis ranges(*module_, callgraph, options_.ranges,
                                 &budget_, ranges_memo);
  if (options_.ranges.enabled) {
    support::faultInjectionPoint("ranges");
    ranges.run();
  }

  support::faultInjectionPoint("shm_propagation");
  analysis::ShmPointerAnalysis shm(*module_, regions, callgraph, &budget_,
                                   shm_memo);
  shm.run();
  stats_.shm_iterations = shm.iterations();

  support::faultInjectionPoint("restrictions");
  analysis::RestrictionChecker restrictions(
      *module_, regions, shm, options_.restrictions, &budget_, &ranges);
  report_.restriction_violations = restrictions.run(diags);

  support::faultInjectionPoint("alias");
  analysis::AliasAnalysis alias(*module_, regions, callgraph,
                                options_.alias, &budget_);
  alias.run();

  if (options_.ranges.enabled) {
    // Consumer 3 needs the alias analysis' region extents, so it runs
    // here rather than inside the restriction phase.
    analysis::checkShmConstBounds(*module_, regions, shm, alias, ranges,
                                  report_, diags);
  }

  support::faultInjectionPoint("taint");
  analysis::TaintAnalysis taint(*module_, regions, shm, alias, callgraph,
                                options_.taint, &budget_, &ranges,
                                taint_memo);
  taint.run(report_);
  stats_.taint_body_analyses = taint.bodyAnalyses();

  if (summaries != nullptr) {
    // --verify-summaries: re-solve all three phases cold (no memo, no
    // budget) and assert the final abstract states are identical. A
    // divergence is a memoization bug; the CLI turns it into exit 2.
    if (options_.summaries.verify && !degraded()) {
      analysis::RangeAnalysis ranges2(*module_, callgraph, options_.ranges,
                                      nullptr);
      if (options_.ranges.enabled) ranges2.run();
      analysis::ShmPointerAnalysis shm2(*module_, regions, callgraph,
                                        nullptr);
      shm2.run();
      analysis::TaintAnalysis taint2(*module_, regions, shm2, alias,
                                     callgraph, options_.taint, nullptr,
                                     &ranges2);
      analysis::SafeFlowReport scratch;
      taint2.run(scratch);
      summary_verify_failed_ =
          ranges.digestState(*summary_index) !=
              ranges2.digestState(*summary_index) ||
          shm.digestState(*summary_index) !=
              shm2.digestState(*summary_index) ||
          taint.digestState(*summary_index) !=
              taint2.digestState(*summary_index);
      if (summary_verify_failed_) {
        SAFEFLOW_LOG(support::LogLevel::kError, "summaries",
                     "--verify-summaries: memoized state diverges from a "
                     "cold solve");
        diags.report(support::Severity::kError, support::SourceLocation{},
                     "summaries.verify",
                     "summary verification failed: memoized analysis state "
                     "diverges from a cold re-solve");
      }
    }
    summaries->finishRun();
    // A degraded run's post-states reflect a tripped budget, not the
    // program; never persist them (beginRun gating already prevents
    // this configuration, but belt and braces).
    if (!degraded()) summaries->flush();
  }

  // Mirror report entries into the diagnostic stream so tooling that only
  // consumes diagnostics sees everything.
  {
    support::faultInjectionPoint("report");
    const support::ScopedTimer timer("phase.report");
    countAnnotations();
    // One finding per distinct location+message: headers included by
    // several TUs would otherwise repeat their diagnostics verbatim.
    report_.deduplicate(frontend_.sources());
    report_.failed_files = failed_files_;
    for (const support::BudgetEvent& e : budget_.events()) {
      report_.degraded_phases.push_back(e.phase);
      diags.warning(
          support::SourceLocation{}, "budget",
          "analysis budget exhausted in phase '" + e.phase + "' (" +
              e.reason + " limit, after " + std::to_string(e.steps) +
              " steps); results for this phase are conservative");
    }
    for (const auto& w : report_.warnings) {
      diags.warning(w.location, "safeflow.warning",
                    "unmonitored read of non-core region '" + w.region_name +
                        "' in " + w.function);
    }
    for (const auto& e : report_.errors) {
      const bool data =
          e.kind == analysis::CriticalDependencyError::Kind::kData;
      diags.report(
          data ? support::Severity::kError : support::Severity::kWarning,
          e.assert_location,
          data ? "safeflow.error" : "safeflow.control-dep",
          "critical value '" + e.critical_value +
              "' depends on unmonitored non-core values" +
              (data ? "" : " (control dependence only: review manually)"));
    }
  }

  stats_.analysis_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  finishPipeline();
  return report_;
}

void SafeFlowDriver::finishPipeline() {
  if (trace_ != nullptr && pipeline_started_) trace_->endSpan(root_span_);

  stats_.frontend_seconds = metrics_.durationTotalSeconds("phase.frontend");
  stats_.total_seconds = stats_.frontend_seconds + stats_.analysis_seconds;

  metrics_.gauge("ir.functions").set(static_cast<double>(stats_.functions));
  metrics_.gauge("shm.regions").set(static_cast<double>(stats_.shm_regions));
  metrics_.gauge("shm.noncore_regions")
      .set(static_cast<double>(stats_.noncore_regions));

  stats_.phase_seconds.clear();
  for (const char* phase : kPhaseOrder) {
    const std::string key = std::string("phase.") + phase;
    if (metrics_.durationCount(key) == 0) continue;
    stats_.phase_seconds.emplace_back(phase,
                                      metrics_.durationTotalSeconds(key));
  }
  auto snap = metrics_.snapshot();
  stats_.counters = snap.counters;
  stats_.gauges = snap.gauges;
  stats_.durations = std::move(snap.durations);
  stats_.budget_events = budget_.events();
  stats_.failed_files = failed_files_;
  stats_.resource = support::sampleResourceUsage();
}

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string SafeFlowStats::renderTable() const {
  std::ostringstream out;
  out << "== SafeFlow pipeline statistics ==\n";
  out << "files analyzed        " << files << "\n"
      << "core LOC              " << loc.code_lines << " (of "
      << loc.total_lines << " total lines)\n"
      << "annotations           " << annotation_count << " ("
      << annotation_lines << " lines)\n"
      << "functions             " << functions << " ("
      << monitor_functions << " monitor, " << init_functions << " init)\n"
      << "shm regions           " << shm_regions << " (" << noncore_regions
      << " non-core)\n";
  out << "phase breakdown:\n";
  char buf[128];
  for (const auto& [name, seconds] : phase_seconds) {
    const double share =
        total_seconds > 0.0 ? 100.0 * seconds / total_seconds : 0.0;
    std::snprintf(buf, sizeof buf, "  %-20s %10.3f ms  %5.1f%%\n",
                  name.c_str(), seconds * 1e3, share);
    out << buf;
  }
  std::snprintf(buf, sizeof buf, "  %-20s %10.3f ms\n", "total",
                total_seconds * 1e3);
  out << buf;
  if (!budget_events.empty()) {
    out << "degraded phases (budget exhausted):\n";
    for (const auto& e : budget_events) {
      std::snprintf(buf, sizeof buf, "  %-20s %s limit after %llu steps\n",
                    e.phase.c_str(), e.reason.c_str(),
                    static_cast<unsigned long long>(e.steps));
      out << buf;
    }
  }
  if (!failed_files.empty()) {
    out << "files with parse errors (partial results):\n";
    for (const std::string& f : failed_files) out << "  " << f << "\n";
  }
  if (!durations.empty()) {
    out << "duration percentiles (bucket-estimated):\n";
    for (const auto& d : durations) {
      std::snprintf(buf, sizeof buf,
                    "  %-28s n=%-6llu p50 %9.3f ms  p90 %9.3f ms  p99 "
                    "%9.3f ms\n",
                    d.name.c_str(), static_cast<unsigned long long>(d.count),
                    d.p50_seconds * 1e3, d.p90_seconds * 1e3,
                    d.p99_seconds * 1e3);
      out << buf;
    }
  }
  if (!shards.empty()) {
    out << "per-shard attribution:\n";
    for (const auto& s : shards) {
      std::snprintf(buf, sizeof buf,
                    "  %-28s %9.3f ms wall  %8llu KiB rss  %d attempt(s)%s\n",
                    s.file.c_str(), s.wall_seconds * 1e3,
                    static_cast<unsigned long long>(s.max_rss_kb), s.attempts,
                    s.from_cache ? "  [cache]" : "");
      out << buf;
    }
  }
  std::snprintf(buf, sizeof buf,
                "resource usage: user %.3f s, sys %.3f s, peak RSS %llu KiB\n",
                resource.user_seconds, resource.sys_seconds,
                static_cast<unsigned long long>(resource.max_rss_kb));
  out << buf;
  if (!cache_disabled_reason.empty()) {
    out << "cache disabled: " << cache_disabled_reason << "\n";
  }
  if (!summaries_disabled_reason.empty()) {
    out << "summaries disabled: " << summaries_disabled_reason << "\n";
  }
  if (!counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(buf, sizeof buf, "  %-38s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << buf;
    }
  }
  return out.str();
}

std::string SafeFlowStats::renderJson() const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": 2,\n  \"files\": " << files
      << ",\n  \"loc\": {\"total_lines\": " << loc.total_lines
      << ", \"code_lines\": " << loc.code_lines
      << ", \"comment_lines\": " << loc.comment_lines
      << ", \"blank_lines\": " << loc.blank_lines << "}"
      << ",\n  \"annotation_count\": " << annotation_count
      << ",\n  \"annotation_lines\": " << annotation_lines
      << ",\n  \"functions\": " << functions
      << ",\n  \"monitor_functions\": " << monitor_functions
      << ",\n  \"init_functions\": " << init_functions
      << ",\n  \"shm_regions\": " << shm_regions
      << ",\n  \"noncore_regions\": " << noncore_regions
      << ",\n  \"shm_iterations\": " << shm_iterations
      << ",\n  \"taint_body_analyses\": " << taint_body_analyses
      << ",\n  \"frontend_seconds\": " << jsonDouble(frontend_seconds)
      << ",\n  \"analysis_seconds\": " << jsonDouble(analysis_seconds)
      << ",\n  \"total_seconds\": " << jsonDouble(total_seconds);
  // Degradation markers appear only when a limit tripped, keeping full
  // runs byte-identical to builds without the budget layer.
  if (!budget_events.empty()) {
    out << ",\n  \"degraded\": true,\n  \"degraded_phases\": [";
    for (std::size_t i = 0; i < budget_events.size(); ++i) {
      const auto& e = budget_events[i];
      out << (i == 0 ? "\n" : ",\n") << "    {\"phase\": \""
          << jsonEscape(e.phase) << "\", \"reason\": \""
          << jsonEscape(e.reason) << "\", \"steps\": " << e.steps << "}";
    }
    out << "\n  ]";
  }
  if (!failed_files.empty()) {
    out << ",\n  \"failed_files\": [";
    for (std::size_t i = 0; i < failed_files.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\"" << jsonEscape(failed_files[i])
          << "\"";
    }
    out << "]";
  }
  out << ",\n  \"phases\": [";
  for (std::size_t i = 0; i < phase_seconds.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
        << jsonEscape(phase_seconds[i].first) << "\", \"seconds\": "
        << jsonDouble(phase_seconds[i].second) << "}";
  }
  out << (phase_seconds.empty() ? "]" : "\n  ]");
  out << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << jsonEscape(counters[i].first)
        << "\": " << counters[i].second;
  }
  out << "}";
  out << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << jsonEscape(gauges[i].first)
        << "\": " << jsonDouble(gauges[i].second);
  }
  out << "}";
  // Schema v2 telemetry sections. Each array entry / object is rendered
  // on a single line that contains a "*_seconds" key, so time-stripping
  // comparators (tests, CI byte-identity checks) drop exactly the
  // nondeterministic lines and keep the deterministic structure.
  if (!durations.empty()) {
    out << ",\n  \"durations\": [";
    for (std::size_t i = 0; i < durations.size(); ++i) {
      const auto& d = durations[i];
      out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
          << jsonEscape(d.name) << "\", \"count\": " << d.count
          << ", \"total_seconds\": " << jsonDouble(d.total_seconds)
          << ", \"min_seconds\": " << jsonDouble(d.min_seconds)
          << ", \"max_seconds\": " << jsonDouble(d.max_seconds)
          << ", \"p50_seconds\": " << jsonDouble(d.p50_seconds)
          << ", \"p90_seconds\": " << jsonDouble(d.p90_seconds)
          << ", \"p99_seconds\": " << jsonDouble(d.p99_seconds) << "}";
    }
    out << "\n  ]";
  }
  if (!shards.empty()) {
    out << ",\n  \"shards\": [";
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const auto& s = shards[i];
      out << (i == 0 ? "\n" : ",\n") << "    {\"file\": \""
          << jsonEscape(s.file) << "\", \"wall_seconds\": "
          << jsonDouble(s.wall_seconds)
          << ", \"user_seconds\": " << jsonDouble(s.user_seconds)
          << ", \"sys_seconds\": " << jsonDouble(s.sys_seconds)
          << ", \"max_rss_kb\": " << s.max_rss_kb
          << ", \"attempts\": " << s.attempts << ", \"from_cache\": "
          << (s.from_cache ? "true" : "false") << "}";
    }
    out << "\n  ]";
  }
  out << ",\n  \"resource\": {\"user_seconds\": "
      << jsonDouble(resource.user_seconds)
      << ", \"sys_seconds\": " << jsonDouble(resource.sys_seconds)
      << ", \"max_rss_kb\": " << resource.max_rss_kb << "}";
  if (!cache_disabled_reason.empty()) {
    out << ",\n  \"cache_disabled_reason\": \""
        << jsonEscape(cache_disabled_reason) << "\"";
  }
  if (!summaries_disabled_reason.empty()) {
    out << ",\n  \"summaries_disabled_reason\": \""
        << jsonEscape(summaries_disabled_reason) << "\"";
  }
  out << "\n}";
  return out.str();
}

std::string SafeFlowStats::renderPrometheus() const {
  // Prometheus text exposition format, version 0.0.4. Metric names keep
  // the registry's dotted names with '.' mapped to '_' and a `safeflow_`
  // prefix; duration histograms export as summaries (quantile labels).
  const auto sanitize = [](const std::string& name) {
    std::string out = "safeflow_";
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
      out += ok ? c : '_';
    }
    return out;
  };
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    const std::string metric = sanitize(name) + "_total";
    out << "# TYPE " << metric << " counter\n"
        << metric << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string metric = sanitize(name);
    out << "# TYPE " << metric << " gauge\n"
        << metric << " " << jsonDouble(value) << "\n";
  }
  for (const auto& d : durations) {
    const std::string metric = sanitize(d.name) + "_seconds";
    out << "# TYPE " << metric << " summary\n"
        << metric << "{quantile=\"0.5\"} " << jsonDouble(d.p50_seconds)
        << "\n"
        << metric << "{quantile=\"0.9\"} " << jsonDouble(d.p90_seconds)
        << "\n"
        << metric << "{quantile=\"0.99\"} " << jsonDouble(d.p99_seconds)
        << "\n"
        << metric << "_sum " << jsonDouble(d.total_seconds) << "\n"
        << metric << "_count " << d.count << "\n";
  }
  out << "# TYPE safeflow_process_user_seconds gauge\n"
      << "safeflow_process_user_seconds "
      << jsonDouble(resource.user_seconds) << "\n"
      << "# TYPE safeflow_process_sys_seconds gauge\n"
      << "safeflow_process_sys_seconds " << jsonDouble(resource.sys_seconds)
      << "\n"
      << "# TYPE safeflow_process_max_rss_kb gauge\n"
      << "safeflow_process_max_rss_kb " << resource.max_rss_kb << "\n";
  for (const auto& s : shards) {
    const std::string label = "{file=\"" + s.file + "\"}";
    out << "safeflow_shard_wall_seconds" << label << " "
        << jsonDouble(s.wall_seconds) << "\n"
        << "safeflow_shard_max_rss_kb" << label << " " << s.max_rss_kb
        << "\n";
  }
  return out.str();
}

}  // namespace safeflow
