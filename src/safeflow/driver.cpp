#include "safeflow/driver.h"

#include <algorithm>

#include "analysis/alias.h"
#include "analysis/shm_propagation.h"
#include "analysis/shm_regions.h"
#include "ir/callgraph.h"
#include "ir/lowering.h"
#include "ir/ssa.h"

namespace safeflow {

namespace {

std::size_t lineSpan(const std::string& text) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.end(), '\n'));
}

void countAnnotationsInStmt(const cfront::Stmt* stmt, SafeFlowStats& stats) {
  if (stmt == nullptr) return;
  switch (stmt->kind()) {
    case cfront::Stmt::Kind::kAnnotation: {
      const auto& a =
          static_cast<const cfront::AnnotationStmt*>(stmt)->annotation();
      ++stats.annotation_count;
      stats.annotation_lines += lineSpan(a.text);
      return;
    }
    case cfront::Stmt::Kind::kCompound:
      for (const auto& s :
           static_cast<const cfront::CompoundStmt*>(stmt)->stmts()) {
        countAnnotationsInStmt(s.get(), stats);
      }
      return;
    case cfront::Stmt::Kind::kIf: {
      const auto* s = static_cast<const cfront::IfStmt*>(stmt);
      countAnnotationsInStmt(s->thenStmt(), stats);
      countAnnotationsInStmt(s->elseStmt(), stats);
      return;
    }
    case cfront::Stmt::Kind::kWhile:
      countAnnotationsInStmt(
          static_cast<const cfront::WhileStmt*>(stmt)->body(), stats);
      return;
    case cfront::Stmt::Kind::kDo:
      countAnnotationsInStmt(
          static_cast<const cfront::DoStmt*>(stmt)->body(), stats);
      return;
    case cfront::Stmt::Kind::kFor: {
      const auto* s = static_cast<const cfront::ForStmt*>(stmt);
      countAnnotationsInStmt(s->init(), stats);
      countAnnotationsInStmt(s->body(), stats);
      return;
    }
    case cfront::Stmt::Kind::kSwitch:
      countAnnotationsInStmt(
          static_cast<const cfront::SwitchStmt*>(stmt)->body(), stats);
      return;
    default:
      return;
  }
}

}  // namespace

SafeFlowDriver::SafeFlowDriver(SafeFlowOptions options)
    : options_(std::move(options)), frontend_(options_.include_dirs) {
  for (const auto& [name, value] : options_.defines) {
    frontend_.predefine(name, value);
  }
}

SafeFlowDriver::~SafeFlowDriver() = default;

bool SafeFlowDriver::addFile(const std::string& path) {
  ++stats_.files;
  const bool ok = frontend_.parseFile(path);
  if (!ok) frontend_errors_ = true;
  // Aggregate LOC over the file as it exists on disk.
  support::SourceManager probe;
  if (auto id = probe.addFile(path)) {
    const auto loc = support::countLoc(probe.contents(*id));
    stats_.loc.total_lines += loc.total_lines;
    stats_.loc.code_lines += loc.code_lines;
    stats_.loc.comment_lines += loc.comment_lines;
    stats_.loc.blank_lines += loc.blank_lines;
  }
  return ok;
}

bool SafeFlowDriver::addSource(std::string name, std::string text) {
  ++stats_.files;
  const auto loc = support::countLoc(text);
  stats_.loc.total_lines += loc.total_lines;
  stats_.loc.code_lines += loc.code_lines;
  stats_.loc.comment_lines += loc.comment_lines;
  stats_.loc.blank_lines += loc.blank_lines;
  const bool ok = frontend_.parseBuffer(std::move(name), std::move(text));
  if (!ok) frontend_errors_ = true;
  return ok;
}

const support::SourceManager& SafeFlowDriver::sources() const {
  return frontend_.sources();
}

const support::DiagnosticEngine& SafeFlowDriver::diagnostics() const {
  return frontend_.diagnostics();
}

void SafeFlowDriver::countAnnotations() {
  for (const auto& fn : frontend_.unit().functions()) {
    for (const auto& a : fn->entryAnnotations()) {
      ++stats_.annotation_count;
      stats_.annotation_lines += lineSpan(a.text);
    }
    countAnnotationsInStmt(fn->body(), stats_);
  }
}

const analysis::SafeFlowReport& SafeFlowDriver::analyze() {
  if (analyzed_) return report_;
  analyzed_ = true;
  const auto start = std::chrono::steady_clock::now();

  auto& diags = frontend_.diagnostics();

  module_ = std::make_unique<ir::Module>(frontend_.types());
  ir::Lowering lowering(frontend_.unit(), *module_, diags);
  if (!lowering.run()) {
    frontend_errors_ = true;
    return report_;
  }
  ir::promoteModuleToSsa(*module_);

  countAnnotations();
  stats_.functions = module_->functions().size();
  for (const auto& fn : module_->functions()) {
    if (fn->annotations.is_monitor) ++stats_.monitor_functions;
    if (fn->annotations.is_shminit) ++stats_.init_functions;
  }

  const auto regions = analysis::ShmRegionTable::build(*module_, diags);
  stats_.shm_regions = regions.regions().size();
  stats_.noncore_regions = regions.noncoreCount();

  ir::CallGraph callgraph(*module_);

  analysis::ShmPointerAnalysis shm(*module_, regions, callgraph);
  shm.run();
  stats_.shm_iterations = shm.iterations();

  analysis::RestrictionChecker restrictions(*module_, regions, shm,
                                            options_.restrictions);
  report_.restriction_violations = restrictions.run(diags);

  analysis::AliasAnalysis alias(*module_, regions, callgraph,
                                options_.alias);
  alias.run();

  analysis::TaintAnalysis taint(*module_, regions, shm, alias, callgraph,
                                options_.taint);
  taint.run(report_);
  stats_.taint_body_analyses = taint.bodyAnalyses();

  // Mirror report entries into the diagnostic stream so tooling that only
  // consumes diagnostics sees everything.
  for (const auto& w : report_.warnings) {
    diags.warning(w.location, "safeflow.warning",
                  "unmonitored read of non-core region '" + w.region_name +
                      "' in " + w.function);
  }
  for (const auto& e : report_.errors) {
    const bool data = e.kind ==
                      analysis::CriticalDependencyError::Kind::kData;
    diags.report(
        data ? support::Severity::kError : support::Severity::kWarning,
        e.assert_location,
        data ? "safeflow.error" : "safeflow.control-dep",
        "critical value '" + e.critical_value +
            "' depends on unmonitored non-core values" +
            (data ? "" : " (control dependence only: review manually)"));
  }

  stats_.analysis_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report_;
}

}  // namespace safeflow
