// Content-addressed persistent store for per-function analysis
// summaries (DESIGN.md §16).
//
// One entry per function Merkle key (summaries.h: body hash + callee
// keys + analyzer version + config fingerprint), holding the recorded
// memo blobs of all three interprocedural phases (shm-pointer
// propagation, ranges, taint). An edit to a function changes its key —
// and, Merkle-style, the key of everything that calls it — so the edited
// cone misses the store and re-solves while the rest of the module
// replays recorded post-states.
//
// Durability rides on support::DiskCache: entries are written through
// the checksummed SFC1 envelope (fsync + temp + rename), so a killed
// writer never leaves an undetected torn entry. On top of that, each
// payload carries its own text header (format tag, analyzer version,
// key echo); anything that fails validation is purged, counted in
// summaries.corrupt, and falls back to cold analysis — never a wrong
// replay. An empty dir makes the store memory-only (the resident tier
// safeflowd workers inherit is still the shared on-disk dir).
//
// The in-memory tier survives beginRun(), so a long-lived process (or a
// test driving several SafeFlowDriver instances) keeps its summaries
// resident between runs; invalidation is entirely by content key, no
// epochs or timestamps.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "analysis/summaries.h"
#include "support/cache.h"

namespace safeflow {

enum class SummaryPhase : int { kShm = 0, kRanges = 1, kTaint = 2 };
inline constexpr int kSummaryPhaseCount = 3;

[[nodiscard]] std::string_view summaryPhaseName(SummaryPhase phase);

/// Per-run counters, reset by beginRun(). `hits` / `misses` count
/// per-(function, digest) memo probes across all phases: a cold run
/// still shows intra-run hits (the fixpoint revisits a function whose
/// inputs did not change since its last solve), which is why tests
/// assert on resolvedFunctions() name sets rather than raw counters.
struct SummaryStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Bound keys with no loadable entry — the invalidated cone of an
  /// edit (plus genuinely-new functions).
  std::uint64_t invalidated = 0;
  /// (phase, function) pairs fully replayed from recorded blobs (zero
  /// live solves in that phase this run).
  std::uint64_t spliced = 0;
  /// Entries written to disk by flush().
  std::uint64_t writes = 0;
  /// Entries purged for torn envelopes, version mismatch, key-echo
  /// mismatch, or unparsable payloads.
  std::uint64_t corrupt = 0;
};

/// The store. Not copyable; one instance may serve many runs (daemon /
/// resident use) — bind each run's keys with beginRun() first.
class SummaryStore {
 public:
  /// `analyzer_version` is echoed into every entry and checked on load
  /// (the driver passes kAnalyzerVersion). Empty `dir` = memory-only.
  /// The byte cap must comfortably exceed the working set: once eviction
  /// starts dropping live entries, every run re-records what the last
  /// run lost and warm hit rates degrade run over run.
  explicit SummaryStore(std::string dir, std::string analyzer_version,
                        std::uint64_t max_bytes = 512ull << 20);

  SummaryStore(const SummaryStore&) = delete;
  SummaryStore& operator=(const SummaryStore&) = delete;

  /// Startup recovery for the on-disk tier: mkdir -p, purge entries
  /// failing envelope verification, sweep aged-out stray temps. Returns
  /// the number of files removed. No-op when memory-only.
  std::uint64_t recoverDir();

  /// Binds this run's function keys and resets per-run stats. Keys come
  /// from analysis::computeFunctionKeys over the *current* module, so a
  /// stale resident entry is simply never addressed again.
  void beginRun(const analysis::FunctionKeyMap& keys);

  /// The memo seam handed to one phase (see PhaseMemoHooks). Valid for
  /// the store's lifetime.
  [[nodiscard]] analysis::SummaryBank* bank(SummaryPhase phase);

  /// Folds per-run derived stats (spliced pairs) and publishes the
  /// summaries.* metrics. Call once per run, after the phases.
  void finishRun();

  /// Persists dirty entries to disk (atomic per entry). The driver
  /// skips this on degraded runs so a budget-truncated post-state is
  /// never stored. Returns false when any store() failed.
  bool flush();

  /// Functions that needed >=1 live solve in `phase` this run (by
  /// name). On a fully-warm run this is empty; after an edit it is
  /// exactly the invalidated cone.
  [[nodiscard]] std::set<std::string> resolvedFunctions(
      SummaryPhase phase) const;
  /// Functions fully replayed in `phase` this run (>=1 hit, 0 live
  /// solves).
  [[nodiscard]] std::set<std::string> memoizedFunctions(
      SummaryPhase phase) const;

  [[nodiscard]] SummaryStoreStats stats() const;
  /// Human-readable one-liner for --summary-stats.
  [[nodiscard]] std::string statsLine() const;

  [[nodiscard]] std::uint64_t residentEntries() const;
  [[nodiscard]] std::uint64_t diskBytes() const;
  [[nodiscard]] const std::string& dir() const { return cache_.dir(); }

 private:
  struct Entry {
    /// Per phase: (input digest, recorded blob), FIFO-capped.
    std::array<std::vector<std::pair<std::uint64_t, std::string>>,
               kSummaryPhaseCount>
        records;
    bool dirty = false;
  };

  class PhaseBank final : public analysis::SummaryBank {
   public:
    PhaseBank() = default;
    void bind(SummaryStore* store, SummaryPhase phase) {
      store_ = store;
      phase_ = phase;
    }
    const std::string* find(const ir::Function& fn,
                            std::uint64_t digest) override;
    void record(const ir::Function& fn, std::uint64_t digest,
                std::string blob) override;

   private:
    SummaryStore* store_ = nullptr;
    SummaryPhase phase_ = SummaryPhase::kShm;
  };

  const std::string* find(SummaryPhase phase, const ir::Function& fn,
                          std::uint64_t digest);
  void record(SummaryPhase phase, const ir::Function& fn,
              std::uint64_t digest, std::string blob);
  /// Entry for `key`, loading (and validating) from disk on first
  /// touch. Returns nullptr when absent everywhere. Caller holds mu_.
  Entry* loadEntry(const std::string& key);
  [[nodiscard]] std::string serialize(const std::string& key,
                                      const Entry& entry) const;
  bool deserialize(const std::string& key, const std::string& payload,
                   Entry* out) const;
  void noteCorrupt(const std::string& key, const char* why);

  support::DiskCache cache_;
  const std::string analyzer_version_;
  const bool disk_enabled_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  /// Keys whose disk load already failed or missed this process — do
  /// not retry the filesystem on every probe.
  std::set<std::string> load_failed_;
  std::map<const ir::Function*, std::string> run_keys_;
  std::array<PhaseBank, kSummaryPhaseCount> banks_;

  SummaryStoreStats stats_;
  std::array<std::set<std::string>, kSummaryPhaseCount> resolved_;
  std::array<std::set<std::string>, kSummaryPhaseCount> hit_;
  std::set<std::string> counted_missing_;
};

}  // namespace safeflow
