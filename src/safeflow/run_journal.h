// Append-only run journal backing `safeflow --resume` (DESIGN.md §15).
//
// A SIGKILL'd multi-TU supervised run used to discard every completed
// shard. The journal fixes that: as each shard's worker outcome is
// accepted, one NDJSON record (shard index, file, exit code, attempts,
// the worker's verbatim stdout and stderr) is appended and fsync'd.
// A restart with the same inputs and `--resume <path>` replays the
// finished shards from the journal — re-spawning only unfinished ones —
// and feeds the replayed documents into the same input-order merge, so
// the merged report is byte-identical to an uninterrupted run.
//
// Crash consistency: records are newline-terminated and parsed
// strictly on open; a torn tail (the process died mid-append) fails
// the JSON parse of its unterminated line and is ignored, which can
// only cost one shard's worth of re-analysis, never replay torn bytes.
//
// Identity: the journal header carries a run key hashed over the
// analyzer version, the worker argument vector, and every input file's
// path and content bytes. A journal whose key does not match the
// current invocation (edited sources, different flags, different file
// list) is discarded and restarted fresh — resuming someone else's run
// would merge stale reports.
//
// Journaled outcomes are live worker results only. Cache hits are not
// recorded: on resume they re-probe the cache (or re-run), which is
// deterministic anyway, and skipping them keeps the journal from
// duplicating multi-megabyte documents the cache already stores.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/metrics.h"

namespace safeflow {

class RunJournal {
 public:
  /// One replayable shard outcome.
  struct Entry {
    std::size_t shard = 0;
    std::string file;
    int exit_code = 0;
    int attempts = 0;
    std::string stdout_text;  // worker-protocol report, verbatim
    std::string stderr_text;
  };

  /// Stable identity (16 hex chars) of "this exact run": analyzer
  /// version + worker argument vector + each input's path and bytes.
  [[nodiscard]] static std::string computeRunKey(
      const std::vector<std::string>& worker_args,
      const std::vector<std::string>& files);

  /// Opens (or creates) the journal at `path` for a run of
  /// `shard_count` shards keyed by `run_key`. An existing journal with
  /// a matching header has its complete records loaded for replay; a
  /// mismatched or corrupt journal is discarded and restarted fresh.
  /// Returns false (with a description) only when the file itself
  /// cannot be created/written — the caller degrades to an
  /// unjournaled run. `metrics` may be null; must outlive the journal.
  bool open(const std::string& path, const std::string& run_key,
            std::size_t shard_count, support::MetricsRegistry* metrics,
            std::string* error);

  /// The replayable outcome for `shard`, or null if the shard did not
  /// finish in the journaled run (or the journal recorded a different
  /// file at that index — a paranoia check on top of the run key).
  [[nodiscard]] const Entry* finished(std::size_t shard,
                                      const std::string& file) const;

  /// Number of replayable outcomes loaded at open().
  [[nodiscard]] std::size_t finishedCount() const {
    return finished_.size();
  }

  /// Appends one accepted live outcome (thread-safe; the supervisor
  /// pool calls this as shards complete). A write failure disables the
  /// journal for the rest of the run — the analysis continues, only
  /// resumability is lost — diagnosed once and counted under
  /// supervisor.journal_write_failures.
  void append(std::size_t shard, const std::string& file, int exit_code,
              int attempts, const std::string& stdout_text,
              const std::string& stderr_text);

  ~RunJournal();

 private:
  std::map<std::size_t, Entry> finished_;
  std::mutex mu_;  // serializes append() across pool threads
  int fd_ = -1;
  bool broken_ = false;
  std::string path_;
  support::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace safeflow
