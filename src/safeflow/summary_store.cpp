#include "safeflow/summary_store.h"

#include <utility>

#include "support/log.h"
#include "support/metrics.h"

namespace safeflow {

namespace {

/// Payload header line; the rest of the payload is BlobWriter framing.
/// Bumping the format is a v2 here — old entries then purge as corrupt,
/// which is the safe direction.
constexpr std::string_view kFormatTag = "safeflow-summary v1\n";

/// FIFO cap on recorded (digest, blob) pairs per phase per function: a
/// function's transformer sees a handful of distinct input states over
/// a fixpoint (typically 1-3), so 32 keeps every useful record while
/// bounding a pathological module's entry size.
constexpr std::size_t kMaxRecordsPerPhase = 32;

}  // namespace

std::string_view summaryPhaseName(SummaryPhase phase) {
  switch (phase) {
    case SummaryPhase::kShm:
      return "shm";
    case SummaryPhase::kRanges:
      return "ranges";
    case SummaryPhase::kTaint:
      return "taint";
  }
  return "?";
}

SummaryStore::SummaryStore(std::string dir, std::string analyzer_version,
                           std::uint64_t max_bytes)
    : cache_(support::DiskCacheOptions{std::move(dir), max_bytes}),
      analyzer_version_(std::move(analyzer_version)),
      disk_enabled_(!cache_.dir().empty()) {
  for (int p = 0; p < kSummaryPhaseCount; ++p) {
    banks_[static_cast<std::size_t>(p)].bind(this,
                                             static_cast<SummaryPhase>(p));
  }
}

std::uint64_t SummaryStore::recoverDir() {
  if (!disk_enabled_) return 0;
  std::string error;
  if (!cache_.ensureDir(&error)) {
    SAFEFLOW_LOG(support::LogLevel::kWarn, "summaries",
                 "summary dir unavailable; store is memory-only this run",
                 {{"dir", cache_.dir()}, {"error", error}});
    return 0;
  }
  std::vector<std::string> purged;
  std::uint64_t removed = cache_.verifyEntries(&purged);
  removed += cache_.sweepStrayTemps();
  if (!purged.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.corrupt += purged.size();
    SAFEFLOW_LOG(support::LogLevel::kWarn, "summaries",
                 "purged torn summary entries; affected functions fall "
                 "back to cold analysis",
                 {{"purged", std::to_string(purged.size())}});
  }
  return removed;
}

void SummaryStore::beginRun(const analysis::FunctionKeyMap& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  run_keys_.clear();
  for (const auto& [fn, key] : keys) run_keys_.emplace(fn, key);
  stats_ = SummaryStoreStats{};
  for (auto& s : resolved_) s.clear();
  for (auto& s : hit_) s.clear();
  counted_missing_.clear();
}

analysis::SummaryBank* SummaryStore::bank(SummaryPhase phase) {
  return &banks_[static_cast<std::size_t>(phase)];
}

const std::string* SummaryStore::PhaseBank::find(const ir::Function& fn,
                                                 std::uint64_t digest) {
  return store_->find(phase_, fn, digest);
}

void SummaryStore::PhaseBank::record(const ir::Function& fn,
                                     std::uint64_t digest,
                                     std::string blob) {
  store_->record(phase_, fn, digest, std::move(blob));
}

const std::string* SummaryStore::find(SummaryPhase phase,
                                      const ir::Function& fn,
                                      std::uint64_t digest) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto kit = run_keys_.find(&fn);
  if (kit == run_keys_.end()) return nullptr;
  Entry* entry = loadEntry(kit->second);
  if (entry == nullptr) {
    if (counted_missing_.insert(kit->second).second) ++stats_.invalidated;
    return nullptr;
  }
  const auto& records = entry->records[static_cast<std::size_t>(phase)];
  for (const auto& [d, blob] : records) {
    if (d == digest) {
      ++stats_.hits;
      hit_[static_cast<std::size_t>(phase)].insert(fn.name());
      return &blob;
    }
  }
  return nullptr;
}

void SummaryStore::record(SummaryPhase phase, const ir::Function& fn,
                          std::uint64_t digest, std::string blob) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto kit = run_keys_.find(&fn);
  if (kit == run_keys_.end()) return;
  ++stats_.misses;
  resolved_[static_cast<std::size_t>(phase)].insert(fn.name());
  Entry& entry = entries_[kit->second];
  auto& records = entry.records[static_cast<std::size_t>(phase)];
  for (auto& [d, b] : records) {
    if (d == digest) {
      if (b != blob) {
        b = std::move(blob);
        entry.dirty = true;
      }
      return;
    }
  }
  if (records.size() >= kMaxRecordsPerPhase) {
    records.erase(records.begin());
  }
  records.emplace_back(digest, std::move(blob));
  entry.dirty = true;
}

SummaryStore::Entry* SummaryStore::loadEntry(const std::string& key) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) return &it->second;
  if (!disk_enabled_ || load_failed_.contains(key)) return nullptr;
  const auto result = cache_.lookupChecked(key);
  if (result.status == support::DiskCache::LookupStatus::kMiss) {
    load_failed_.insert(key);
    return nullptr;
  }
  if (result.status == support::DiskCache::LookupStatus::kTorn) {
    noteCorrupt(key, "torn envelope");
    return nullptr;
  }
  Entry entry;
  if (!deserialize(key, result.payload, &entry)) {
    noteCorrupt(key, "invalid payload");
    return nullptr;
  }
  return &entries_.emplace(key, std::move(entry)).first->second;
}

void SummaryStore::noteCorrupt(const std::string& key, const char* why) {
  cache_.remove(key);
  load_failed_.insert(key);
  ++stats_.corrupt;
  SAFEFLOW_LOG(support::LogLevel::kWarn, "summaries",
               "purged corrupt summary entry; falling back to cold analysis",
               {{"key", key}, {"reason", std::string(why)}});
}

std::string SummaryStore::serialize(const std::string& key,
                                    const Entry& entry) const {
  analysis::BlobWriter w;
  w.str(analyzer_version_);
  w.str(key);
  for (const auto& records : entry.records) {
    w.u64(records.size());
    for (const auto& [digest, blob] : records) {
      w.u64(digest);
      w.str(blob);
    }
  }
  std::string payload(kFormatTag);
  payload += w.take();
  return payload;
}

bool SummaryStore::deserialize(const std::string& key,
                               const std::string& payload,
                               Entry* out) const {
  if (payload.size() < kFormatTag.size() ||
      std::string_view(payload).substr(0, kFormatTag.size()) != kFormatTag) {
    return false;
  }
  analysis::BlobReader r(
      std::string_view(payload).substr(kFormatTag.size()));
  if (r.str() != analyzer_version_) return false;
  if (r.str() != key) return false;
  for (auto& records : out->records) {
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > kMaxRecordsPerPhase) return false;
    records.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t digest = r.u64();
      std::string blob = r.str();
      if (!r.ok()) return false;
      records.emplace_back(digest, std::move(blob));
    }
  }
  return r.ok() && r.atEnd();
}

void SummaryStore::finishRun() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int p = 0; p < kSummaryPhaseCount; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    for (const std::string& name : hit_[idx]) {
      if (!resolved_[idx].contains(name)) ++stats_.spliced;
    }
  }
  SAFEFLOW_COUNT_N("summaries.hits", stats_.hits);
  SAFEFLOW_COUNT_N("summaries.misses", stats_.misses);
  SAFEFLOW_COUNT_N("summaries.invalidated", stats_.invalidated);
  SAFEFLOW_COUNT_N("summaries.spliced", stats_.spliced);
  SAFEFLOW_COUNT_N("summaries.corrupt", stats_.corrupt);
  SAFEFLOW_GAUGE("summaries.store_entries", entries_.size());
  if (disk_enabled_) {
    SAFEFLOW_GAUGE("summaries.store_bytes", cache_.totalBytes());
  }
}

bool SummaryStore::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!disk_enabled_) return true;
  std::string error;
  if (!cache_.ensureDir(&error)) {
    SAFEFLOW_LOG(support::LogLevel::kWarn, "summaries",
                 "summary flush skipped: dir unavailable",
                 {{"dir", cache_.dir()}, {"error", error}});
    return false;
  }
  bool ok = true;
  for (auto& [key, entry] : entries_) {
    if (!entry.dirty) continue;
    const auto result = cache_.store(key, serialize(key, entry));
    if (!result.ok) {
      SAFEFLOW_LOG(support::LogLevel::kWarn, "summaries",
                   "summary entry store failed",
                   {{"key", key}, {"error", result.error}});
      ok = false;
      continue;
    }
    entry.dirty = false;
    ++stats_.writes;
    // A flush may race another shard's store of the same key; both
    // writes are whole-entry atomic renames, so last-writer-wins is
    // safe (entries under one key are interchangeable re-recordings).
  }
  SAFEFLOW_COUNT_N("summaries.writes", stats_.writes);
  return ok;
}

std::set<std::string> SummaryStore::resolvedFunctions(
    SummaryPhase phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  return resolved_[static_cast<std::size_t>(phase)];
}

std::set<std::string> SummaryStore::memoizedFunctions(
    SummaryPhase phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto idx = static_cast<std::size_t>(phase);
  std::set<std::string> out;
  for (const std::string& name : hit_[idx]) {
    if (!resolved_[idx].contains(name)) out.insert(name);
  }
  return out;
}

SummaryStoreStats SummaryStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string SummaryStore::statsLine() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line = "summaries: hits=" + std::to_string(stats_.hits);
  line += " misses=" + std::to_string(stats_.misses);
  line += " invalidated=" + std::to_string(stats_.invalidated);
  line += " spliced=" + std::to_string(stats_.spliced);
  line += " writes=" + std::to_string(stats_.writes);
  line += " corrupt=" + std::to_string(stats_.corrupt);
  line += " entries=" + std::to_string(entries_.size());
  if (disk_enabled_) {
    line += " bytes=" + std::to_string(cache_.totalBytes());
  }
  return line;
}

std::uint64_t SummaryStore::residentEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t SummaryStore::diskBytes() const {
  return disk_enabled_ ? cache_.totalBytes() : 0;
}

}  // namespace safeflow
