#include "safeflow/run_journal.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "safeflow/driver.h"
#include "support/cache.h"
#include "support/flight_recorder.h"
#include "support/io_faults.h"
#include "support/json.h"
#include "support/log.h"

namespace safeflow {

namespace {

constexpr std::uint64_t kJournalSchema = 1;

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string headerLine(const std::string& run_key,
                       std::size_t shard_count) {
  std::ostringstream out;
  out << "{\"safeflow_journal\": " << kJournalSchema << ", \"run_key\": \""
      << jsonEscape(run_key) << "\", \"shards\": " << shard_count
      << "}\n";
  return out.str();
}

}  // namespace

std::string RunJournal::computeRunKey(
    const std::vector<std::string>& worker_args,
    const std::vector<std::string>& files) {
  support::Fnv1a hasher;
  hasher.update("safeflow-journal:");
  hasher.update(std::to_string(kJournalSchema));
  hasher.update("\n");
  hasher.update("analyzer:");
  hasher.update(kAnalyzerVersion);
  hasher.update("\n");
  for (const std::string& arg : worker_args) {
    hasher.update("arg:");
    hasher.update(arg);
    hasher.update("\n");
  }
  for (const std::string& file : files) {
    hasher.update("tu:");
    hasher.update(file);
    hasher.update("\n");
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      hasher.update("missing\n");
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string contents = buffer.str();
    hasher.update("bytes:");
    hasher.update(std::to_string(contents.size()));
    hasher.update("\n");
    hasher.update(contents);
  }
  return hasher.hex();
}

bool RunJournal::open(const std::string& path, const std::string& run_key,
                      std::size_t shard_count,
                      support::MetricsRegistry* metrics,
                      std::string* error) {
  path_ = path;
  metrics_ = metrics;
  finished_.clear();

  // Load whatever complete records an earlier run left behind. Only
  // newline-terminated lines that parse as JSON count: a torn tail from
  // a killed appender is silently dropped (its shard re-runs).
  bool reusable = false;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string text = buffer.str();
      std::size_t pos = 0;
      bool first = true;
      while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) break;  // torn tail
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        support::json::Value doc;
        std::string parse_error;
        if (!support::json::parse(line, &doc, &parse_error) ||
            !doc.isObject()) {
          break;  // corrupt record: everything after it is suspect
        }
        if (first) {
          first = false;
          if (doc.memberUint("safeflow_journal") != kJournalSchema ||
              doc.memberString("run_key") != run_key ||
              doc.memberUint("shards") != shard_count) {
            break;  // a different run's journal: discard it
          }
          reusable = true;
          continue;
        }
        Entry entry;
        entry.shard = doc.memberUint("shard");
        entry.file = doc.memberString("file");
        entry.exit_code = static_cast<int>(doc.memberNumber("exit_code"));
        entry.attempts = static_cast<int>(doc.memberNumber("attempts"));
        entry.stdout_text = doc.memberString("stdout");
        entry.stderr_text = doc.memberString("stderr");
        if (entry.shard >= shard_count || entry.stdout_text.empty()) {
          continue;  // unreplayable record; keep scanning
        }
        finished_[entry.shard] = std::move(entry);
      }
      if (!reusable) finished_.clear();
    }
  }

  const int flags =
      O_WRONLY | O_CREAT | O_CLOEXEC | (reusable ? O_APPEND : O_TRUNC);
  fd_ = ::open(path.c_str(), flags, 0666);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "cannot open run journal '" + path + "'";
    }
    return false;
  }
  if (!reusable) {
    const std::string header = headerLine(run_key, shard_count);
    support::io::IoStatus status =
        support::io::writeAll(fd_, header, "journal.append");
    if (status.ok) status = support::io::fsyncFd(fd_, "journal.append");
    if (!status.ok) {
      ::close(fd_);
      fd_ = -1;
      if (error != nullptr) {
        *error = "cannot write run journal '" + path +
                 "': " + status.message;
      }
      return false;
    }
  }
  return true;
}

const RunJournal::Entry* RunJournal::finished(
    std::size_t shard, const std::string& file) const {
  const auto it = finished_.find(shard);
  if (it == finished_.end()) return nullptr;
  // The run key already covers the file list, but an index/file check
  // costs nothing and turns any future keying bug into a re-run instead
  // of a misattributed report.
  if (it->second.file != file) return nullptr;
  return &it->second;
}

void RunJournal::append(std::size_t shard, const std::string& file,
                        int exit_code, int attempts,
                        const std::string& stdout_text,
                        const std::string& stderr_text) {
  std::ostringstream out;
  out << "{\"shard\": " << shard << ", \"file\": \"" << jsonEscape(file)
      << "\", \"exit_code\": " << exit_code
      << ", \"attempts\": " << attempts << ", \"stdout\": \""
      << jsonEscape(stdout_text) << "\", \"stderr\": \""
      << jsonEscape(stderr_text) << "\"}\n";
  const std::string record = out.str();

  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0 || broken_) return;
  support::io::IoStatus status =
      support::io::writeAll(fd_, record, "journal.append");
  if (status.ok) status = support::io::fsyncFd(fd_, "journal.append");
  if (!status.ok) {
    // Losing the journal loses resumability, nothing else: the run
    // continues, and the next --resume simply starts fresh.
    broken_ = true;
    if (metrics_ != nullptr) {
      metrics_->counter("supervisor.journal_write_failures").add();
    }
    support::flightRecord("journal", "append failed: " + status.message);
    SAFEFLOW_LOG(support::LogLevel::kWarn, "supervisor",
                 "run journal write failed; continuing without resume "
                 "support",
                 {{"path", path_}, {"error", status.message}});
  }
}

RunJournal::~RunJournal() {
  if (fd_ >= 0) ::close(fd_);
}

}  // namespace safeflow
