// Manifest of the reconstructed evaluation corpora (paper §4, Table 1):
// which files make up each system, which of them form the analyzed core
// component, and the numbers the paper reports for comparison.
#pragma once

#include <string>
#include <vector>

#include "safeflow/driver.h"

namespace safeflow {

struct PaperRow {
  int loc_total = 0;
  int loc_core = 0;
  int source_changes = 0;  // changed lines (0 when no refactor was needed)
  int source_diff_lines = 0;  // the paper's "(diff output)" figure
  int changed_functions = 0;
  int annotation_lines = 0;
  int error_dependencies = 0;
  int warnings = 0;
  int false_positives = 0;
};

struct CorpusSystem {
  std::string name;
  std::string display_name;
  /// Files handed to the SafeFlow driver (the core component).
  std::vector<std::string> core_files;
  /// Everything that makes up the system (for the total-LOC column).
  std::vector<std::string> all_files;
  /// (original, shipped) pairs diffed for the source-changes column.
  std::vector<std::pair<std::string, std::string>> refactor_pairs;
  PaperRow paper;
};

/// The three evaluation systems rooted at `corpus_dir`.
[[nodiscard]] std::vector<CorpusSystem> corpusSystems(
    const std::string& corpus_dir);

/// Options used for all corpus analyses: the pid argument of kill is
/// critical in every system (paper §4).
[[nodiscard]] SafeFlowOptions corpusAnalysisOptions();

/// Row of Table 1 measured on one system.
struct MeasuredRow {
  int loc_total = 0;
  int loc_core = 0;
  int source_changes = 0;
  int annotation_lines = 0;
  int error_dependencies = 0;
  int warnings = 0;
  int false_positives = 0;
  int restriction_violations = 0;
  bool frontend_clean = false;
  double analysis_seconds = 0.0;
};

/// Runs the full pipeline on one system and fills a measured row.
[[nodiscard]] MeasuredRow measureSystem(const CorpusSystem& system);

}  // namespace safeflow
