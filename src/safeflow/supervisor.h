// Out-of-process analysis supervisor: shards a multi-file invocation
// into per-TU `safeflow --worker` child processes so that a hard crash
// (SIGSEGV in the frontend, a runaway loop, an OOM kill) on one
// pathological translation unit cannot take down the whole run.
//
// Scheduling: a pool of up to `jobs` concurrent workers, each analyzing
// one input file. Every worker runs under a wall-clock watchdog
// (SIGKILL on deadline) and its exit is classified: a normal exit in
// {0,1,2,3} with a parseable JSON report is accepted; a signal death,
// watchdog kill, or torn report is retried up to `max_retries` times
// with exponential backoff and a tightened analysis time budget (the
// retry hypothesis is "the input is pathological, degrade instead of
// dying"). A shard that exhausts its retries is recorded in
// `failed_files` with the signal name and captured stderr; every other
// shard is unaffected.
//
// Merging: per-worker JSON reports (worker protocol =
// SafeFlowReport::renderJson with worker extras) and per-worker stats
// documents are merged in *input file order* — never completion order —
// so the merged report is byte-identical for any --jobs value; only
// wall-clock fields differ. Duplicate findings from headers included by
// several TUs are dropped with the same file:line:category:message key
// the in-process path uses. Exit-code semantics follow the shared
// ladder in driver.h (exitCodeFor), and `degraded` / `failed_files`
// carry the PR 2 meanings.
//
// Note on semantics: per-TU sharding analyzes each file as its own
// program, like running `safeflow` once per file. Cross-TU value flow
// (a region initialized in one file and read in another) is only seen
// by the default whole-program in-process mode; `--isolate` trades that
// for crash isolation and parallelism. See DESIGN.md §10.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "safeflow/driver.h"
#include "support/flight_recorder.h"
#include "support/json.h"
#include "support/metrics.h"

namespace safeflow {

class CacheManager;
class RunJournal;

struct SupervisorOptions {
  /// Maximum concurrent workers (>= 1).
  std::size_t jobs = 1;
  /// Retries after the first attempt for crash/timeout/torn-report
  /// failures (attempts = 1 + max_retries).
  int max_retries = 2;
  /// First backoff sleep before a retry; doubles per further retry.
  double backoff_base_seconds = 0.05;
  /// Watchdog deadline per worker attempt; <= 0 disables the watchdog.
  double worker_timeout_seconds = 60.0;
  /// Factor applied to the analysis time budget on each retry (the
  /// retried attempt runs with `--time-budget` tightened so a
  /// pathological input degrades conservatively instead of dying again).
  double retry_budget_factor = 0.5;
  /// The run's original --time-budget in seconds (0 = none); used as the
  /// base the retry budget tightens from. When 0, retries tighten from
  /// half the watchdog deadline instead.
  double base_time_budget_seconds = 0.0;
  /// Path to the safeflow executable to use as the worker.
  std::string worker_exe;
  /// Analysis options forwarded verbatim to every worker (e.g. "-I",
  /// "dir", "--mode=call-strings", "--time-budget", "250ms").
  std::vector<std::string> worker_args;
  /// Extra environment for every worker (tests use this to aim
  /// SAFEFLOW_INJECT_FAULT at one shard without mutating global env).
  std::vector<std::pair<std::string, std::string>> extra_env;
  /// Optional incremental result cache (DESIGN.md §11). On a hit the
  /// supervisor skips spawning the shard's worker entirely and feeds the
  /// cached worker-protocol document into the same input-order merge;
  /// first-attempt accepted shards are stored back. May be null; must
  /// outlive run().
  CacheManager* cache = nullptr;
  /// Optional run journal (--resume). Shards already recorded as
  /// finished are replayed from the journal without spawning a worker
  /// (counted under supervisor.shards_resumed_skipped); freshly
  /// accepted live outcomes are appended as they complete. May be
  /// null; must outlive run().
  RunJournal* journal = nullptr;
  /// Optional span collector for the supervisor's own orchestration
  /// spans (shard lifecycle, spawn/wait, backoff, cache probes, merge).
  /// Its epoch is also the reference timeline worker spans are re-based
  /// onto in the stitched trace (DESIGN.md §13). May be null.
  support::TraceCollector* trace = nullptr;
  /// Cap on captured worker stderr per attempt (--worker-stderr-cap);
  /// excess is dropped with a truncation marker so one log-spamming
  /// shard cannot bloat failure records. 0 disables the cap.
  std::size_t worker_stderr_cap = 64u << 10;
};

/// The outcome of obtaining one shard's worker-protocol document,
/// whether from a live worker or the incremental cache. This is the
/// unit the merge consumes; the in-process cache path builds one by
/// hand to reuse the exact same merge/rendering machinery.
struct WorkerOutcome {
  bool accepted = false;          // a JSON report was obtained
  support::json::Value report;    // valid when accepted
  int exit_code = -1;             // ladder exit code when accepted
  int attempts = 0;               // 0 when served from cache
  bool from_cache = false;
  std::string raw_stdout;         // worker stdout verbatim (cache store)
  std::string failure_reason;     // non-empty when !accepted
  std::string stderr_text;        // last attempt's (or cached) stderr
  bool stderr_truncated = false;  // stderr hit --worker-stderr-cap
  double wall_seconds = 0.0;      // accepted attempt's wall clock
};

/// One shard that exhausted its retries (or failed unretryably).
struct WorkerFailure {
  std::string file;
  /// "SIGSEGV", "timeout", "exit 2 (no report)", "unparseable report",
  /// "spawn failed: ...".
  std::string reason;
  int attempts = 0;
  /// Tail of the last attempt's captured stderr.
  std::string stderr_tail;
  /// Flight-recorder events the dying worker dumped to its stderr
  /// (SAFEFLOW-FR lines), newest-first suffix of its event ring. The
  /// last "phase" event names where in the pipeline it died.
  std::vector<support::FlightEvent> flight_events;
};

/// The merged result of a supervised run. Field meanings mirror
/// analysis::SafeFlowReport; entries are pre-rendered strings because
/// they crossed the worker JSON protocol.
struct MergedReport {
  struct Warning {
    std::string location, function, region;
    bool bytes_known = false;
    std::int64_t lo = 0, hi = 0;
  };
  struct Error {
    bool data = true;
    std::string location, function, critical;
    std::vector<std::string> regions;
    std::vector<std::string> sources;
  };
  struct Violation {
    std::string rule, location, message;
  };

  std::vector<Warning> warnings;
  std::vector<Error> errors;
  std::vector<Violation> restriction_violations;
  std::size_t asserts_checked = 0;
  std::vector<std::string> required_runtime_checks;
  std::vector<std::string> degraded_phases;
  /// Files that failed: worker parse failures (from the worker's own
  /// failed_files) and shards whose worker died (see worker_failures).
  std::vector<std::string> failed_files;
  std::vector<WorkerFailure> worker_failures;

  /// Telemetry one live worker reported (the report document's
  /// "telemetry" member), kept for trace stitching. Cache-hit shards
  /// contribute none: their recorded epochs belong to a past run and
  /// cannot be re-based onto this run's timeline.
  struct ShardTelemetry {
    std::size_t shard_index = 0;     // lane: input-order position
    std::string file;
    std::int64_t epoch_steady_ns = 0;  // worker TraceCollector epoch
    std::uint64_t pid = 0;             // worker's real pid (lane label)
    support::json::Value spans;        // worker span array (may be empty)
  };
  std::vector<ShardTelemetry> shard_telemetry;

  /// Merged pipeline statistics (sums over workers + supervisor.*
  /// counters); wall-clock fields are sums of per-worker wall time.
  SafeFlowStats stats;
  /// Captured stderr of shards with frontend errors or failures, in
  /// input order, each block preceded by a "--- worker stderr ..."
  /// header line. Printed to stderr by the CLI, never part of stdout.
  std::string diagnostics_text;

  bool frontend_errors = false;
  [[nodiscard]] bool degraded() const { return !degraded_phases.empty(); }
  [[nodiscard]] std::size_t dataErrorCount() const;
  [[nodiscard]] std::size_t controlErrorCount() const;
  [[nodiscard]] int exitCode() const {
    return exitCodeFor(dataErrorCount(), frontend_errors, degraded());
  }

  /// Text rendering in the in-process report format (plus `[failed]`
  /// lines for dead shards).
  [[nodiscard]] std::string render() const;
  /// JSON rendering in the in-process `--json` schema (plus a
  /// "worker_failures" array when shards died); embeds `stats_json`
  /// verbatim when non-empty.
  [[nodiscard]] std::string renderJson(const std::string& stats_json) const;

  /// One Chrome-trace (Perfetto-loadable) document stitching the
  /// supervisor's own spans (pid 1) together with every live worker's
  /// spans, one process lane per shard (pid = shard index + 2, labeled
  /// with the file and real pid). Worker timestamps are re-based onto
  /// the supervisor collector's monotonic epoch, so `--trace --jobs 8`
  /// shows one coherent timeline (DESIGN.md §13).
  [[nodiscard]] std::string renderStitchedTrace(
      const support::TraceCollector& supervisor_trace) const;
};

/// Merges per-shard outcomes in input order (files[i] produced
/// outcomes[i]; the two must be the same length). Findings are
/// deduplicated with the in-process keys, stats documents are summed,
/// failures become WorkerFailure entries. When `emit_stderr_headers` is
/// false the "--- worker stderr ---" blocks are suppressed
/// (merged.diagnostics_text stays empty) — the in-process cache path
/// prints its own diagnostics verbatim instead.
[[nodiscard]] MergedReport mergeWorkerOutcomes(
    const std::vector<std::string>& files,
    std::vector<WorkerOutcome>& outcomes, bool emit_stderr_headers = true);

/// Folds a registry snapshot into `stats` the way the supervisor does
/// before rendering: counters add, gauges overwrite.
void foldRegistrySnapshot(const support::MetricsRegistry& metrics,
                          SafeFlowStats* stats);

/// A merged run rendered to the exact byte streams the CLI emits: the
/// report document on stdout, worker diagnostics on stderr, and the
/// ladder exit code. Shared by the one-shot CLI and the daemon so a
/// daemon-served response is byte-identical to the one-shot output for
/// the same inputs and flags.
struct RenderedRun {
  std::string stdout_text;
  std::string stderr_text;
  int exit_code = 0;
};
[[nodiscard]] RenderedRun renderMergedRun(const MergedReport& merged,
                                          bool json, bool quiet);

class Supervisor {
 public:
  /// `metrics` receives supervisor.* counters/durations and may be the
  /// registry whose snapshot lands in the merged stats; must outlive
  /// run().
  Supervisor(SupervisorOptions options, support::MetricsRegistry* metrics);

  /// Analyzes `files`, one worker per file. Blocking; never throws on
  /// worker misbehavior (a dead worker becomes a WorkerFailure).
  [[nodiscard]] MergedReport run(const std::vector<std::string>& files);

 private:
  void analyzeShard(std::size_t shard_index, const std::string& file,
                    WorkerOutcome* result);
  void runShard(const std::string& file, WorkerOutcome* result);

  SupervisorOptions options_;
  support::MetricsRegistry* metrics_;
};

}  // namespace safeflow
