// Content-addressed incremental analysis cache (DESIGN.md §11).
//
// SafeFlow's pipeline is deterministic per input set: the same sources
// (including every resolved header), the same analyzer version, and the
// same analysis-relevant configuration always produce the same report.
// The CacheManager exploits that by keying an on-disk entry (a
// support::DiskCache under --cache-dir) with a 64-bit FNV-1a digest
// over exactly those inputs and storing the run's worker-protocol JSON
// report, exit code, and rendered diagnostics. A warm run replays the
// entry through the same merge path the supervisor uses, so cached and
// live runs are byte-identical (modulo the cache counters inside the
// stats document).
//
// Key composition (any difference => different key => miss):
//   - cache envelope schema version;
//   - kAnalyzerVersion (driver.h; bumped on analysis-semantics changes);
//   - the analysis-relevant CLI flags, canonically the same passthrough
//     vector the supervisor forwards to workers (-I/-D/--mode/
//     --no-control-deps/--kill-critical/--time-budget/--step-budget/
//     --max-depth). Observability (--trace/--stats*/--dot/--json) and
//     scheduling (--jobs/--isolate/--worker-timeout/--retries) flags
//     are deliberately excluded: they cannot change findings;
//   - per input file, in input order: its path (reports embed path
//     strings, so equal content at a different path must not hit) and
//     the bytes of the file plus its transitive `#include "..."`
//     closure, resolved exactly like the preprocessor (including-file
//     directory first, then -I dirs in order). The closure scan ignores
//     conditional compilation, i.e. hashes a superset of what the
//     preprocessor may include — that can only cause spurious misses,
//     never a wrong hit. Unresolvable includes hash as a marker so a
//     header appearing later changes the key.
//
// Robustness: entries are written crash-consistently by DiskCache
// (checksummed envelope, fsync, temp + rename); lookup() first checks
// the storage envelope (a torn/truncated entry is counted as
// cache.torn_entries_purged) and then validates the JSON envelope
// (parse, schema, key echo, analyzer version, exit code range). Any
// mismatch is "corrupt": one diagnostic on stderr, a cache.corrupt
// count, the entry purged, and the caller falls back to a cold run.
// Corruption is never a crash and never a wrong report. The whole
// cache is disabled when SAFEFLOW_INJECT_FAULT is armed: injected
// faults make runs non-deterministic, which violates the cache's core
// assumption. SAFEFLOW_INJECT_IO, by contrast, keeps the cache ON —
// surviving injected storage faults is precisely what it exists to
// prove.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/cache.h"
#include "support/json.h"
#include "support/metrics.h"

namespace safeflow {

struct CacheOptions {
  bool enabled = false;
  /// Created on demand, parents included (--cache-dir).
  std::string dir = ".safeflow-cache";
  /// LRU size cap (--cache-max-mb, default 256 MiB).
  std::uint64_t max_bytes = 256ull << 20;
  /// Include search path, needed to resolve the header closure the way
  /// the preprocessor will.
  std::vector<std::string> include_dirs;
  /// Canonical analysis-relevant flag identity, in command-line order
  /// (the supervisor's worker passthrough vector).
  std::vector<std::string> analysis_flags;
  /// Run a verify-and-purge sweep over every entry at construction
  /// (crash recovery after SIGKILL/power loss). The daemon, which
  /// constructs a manager per request against one shared directory,
  /// turns this off and sweeps once at startup instead.
  bool verify_on_open = true;
};

/// A decoded cache entry: everything needed to reproduce the run's
/// observable behavior without re-analyzing.
struct CachedResult {
  /// The worker-protocol report document (public --json schema plus
  /// required_runtime_checks and the embedded stats object).
  support::json::Value report;
  /// Exit code of the original run (the shared ladder in driver.h).
  int exit_code = 0;
  /// Rendered diagnostics of the original run (worker stderr).
  std::string stderr_text;
};

class CacheManager {
 public:
  /// `metrics` receives cache.hits/misses/writes/evictions/corrupt and
  /// the cache.size_bytes gauge; may be null (counting disabled). Must
  /// outlive the manager. Thread-safe: the supervisor calls lookup/
  /// store from its worker pool.
  CacheManager(CacheOptions options, support::MetricsRegistry* metrics);

  [[nodiscard]] bool enabled() const { return options_.enabled; }
  [[nodiscard]] const std::string& dir() const { return options_.dir; }

  /// Non-empty when a cache the user asked for (--cache-dir) was
  /// disabled anyway; names why ("fault-injection", "trace", "dot").
  /// Surfaced as a note diagnostic and the cache.disabled_reason stat
  /// so warm-run expectations are never silently wrong.
  [[nodiscard]] const std::string& disabledReason() const {
    return disabled_reason_;
  }

  /// Disables the cache, recording `reason` (first reason wins). No-op
  /// when the cache was never enabled.
  void disable(std::string reason);

  /// Stable content key (16 hex chars) for analyzing `files` as one
  /// unit. The supervisor keys each shard with a single-file vector;
  /// the in-process whole-program path keys the full input set.
  [[nodiscard]] std::string keyFor(
      const std::vector<std::string>& files) const;

  /// Hit: decoded entry, LRU-refreshed. Miss (absent, unreadable, or
  /// corrupt): nullopt; corrupt entries are additionally purged and
  /// reported once on stderr.
  [[nodiscard]] std::optional<CachedResult> lookup(const std::string& key);

  /// Persists a finished run under `key`. `report_json` must be the
  /// worker-protocol rendering; failures to write are diagnosed on
  /// stderr but never fail the run.
  void store(const std::string& key, const std::string& report_json,
             int exit_code, const std::string& stderr_text);

  /// One-line human summary for --cache-stats.
  [[nodiscard]] std::string statsLine() const;

 private:
  void count(const char* name, std::uint64_t delta = 1);
  /// Hashes `path` and its transitive include closure into `hasher`.
  /// Caller holds closure_mu_.
  void hashFileClosure(const std::string& path,
                       const std::string& display_name,
                       support::Fnv1a& hasher,
                       std::vector<std::string>& visited) const;

  /// One file's bytes and resolved include edges, read from disk once
  /// per run. A shared header is part of every TU's closure, so without
  /// this memo an N-TU corpus re-reads it N times per keyFor sweep;
  /// with it the run does O(unique files) reads. Pinning the first
  /// observation also makes every shard key of one run see the same
  /// filesystem snapshot. Caller holds closure_mu_.
  struct FileInfo {
    bool exists = false;
    std::string contents;
    /// (resolved, value): value is the resolved path to recurse into,
    /// or the raw include name when resolution failed.
    std::vector<std::pair<bool, std::string>> includes;
  };
  const FileInfo& fileInfo(const std::string& path) const;

  CacheOptions options_;
  support::DiskCache disk_;
  support::MetricsRegistry* metrics_;
  std::string disabled_reason_;
  std::mutex mu_;  // serializes disk I/O from pool threads
  /// Guards file_info_: keyFor is const and runs on pool threads.
  mutable std::mutex closure_mu_;
  mutable std::map<std::string, FileInfo> file_info_;
};

}  // namespace safeflow
