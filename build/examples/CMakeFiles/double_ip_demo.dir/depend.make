# Empty dependencies file for double_ip_demo.
# This may be replaced when dependencies are built.
