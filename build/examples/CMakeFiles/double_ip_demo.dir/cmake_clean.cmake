file(REMOVE_RECURSE
  "CMakeFiles/double_ip_demo.dir/double_ip_demo.cpp.o"
  "CMakeFiles/double_ip_demo.dir/double_ip_demo.cpp.o.d"
  "double_ip_demo"
  "double_ip_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_ip_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
