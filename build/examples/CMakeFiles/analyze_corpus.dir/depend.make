# Empty dependencies file for analyze_corpus.
# This may be replaced when dependencies are built.
