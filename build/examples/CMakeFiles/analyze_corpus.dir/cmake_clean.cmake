file(REMOVE_RECURSE
  "CMakeFiles/analyze_corpus.dir/analyze_corpus.cpp.o"
  "CMakeFiles/analyze_corpus.dir/analyze_corpus.cpp.o.d"
  "analyze_corpus"
  "analyze_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
