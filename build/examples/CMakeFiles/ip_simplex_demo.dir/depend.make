# Empty dependencies file for ip_simplex_demo.
# This may be replaced when dependencies are built.
