file(REMOVE_RECURSE
  "CMakeFiles/ip_simplex_demo.dir/ip_simplex_demo.cpp.o"
  "CMakeFiles/ip_simplex_demo.dir/ip_simplex_demo.cpp.o.d"
  "ip_simplex_demo"
  "ip_simplex_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_simplex_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
