# Empty compiler generated dependencies file for message_passing_demo.
# This may be replaced when dependencies are built.
