file(REMOVE_RECURSE
  "CMakeFiles/message_passing_demo.dir/message_passing_demo.cpp.o"
  "CMakeFiles/message_passing_demo.dir/message_passing_demo.cpp.o.d"
  "message_passing_demo"
  "message_passing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_passing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
