file(REMOVE_RECURSE
  "CMakeFiles/restrictions_micro.dir/restrictions_micro.cpp.o"
  "CMakeFiles/restrictions_micro.dir/restrictions_micro.cpp.o.d"
  "restrictions_micro"
  "restrictions_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restrictions_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
