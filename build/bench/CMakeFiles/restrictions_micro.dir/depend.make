# Empty dependencies file for restrictions_micro.
# This may be replaced when dependencies are built.
