file(REMOVE_RECURSE
  "CMakeFiles/table1_safeflow.dir/table1_safeflow.cpp.o"
  "CMakeFiles/table1_safeflow.dir/table1_safeflow.cpp.o.d"
  "table1_safeflow"
  "table1_safeflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_safeflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
