# Empty dependencies file for table1_safeflow.
# This may be replaced when dependencies are built.
