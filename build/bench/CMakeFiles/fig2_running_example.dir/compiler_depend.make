# Empty compiler generated dependencies file for fig2_running_example.
# This may be replaced when dependencies are built.
