file(REMOVE_RECURSE
  "CMakeFiles/analysis_micro.dir/analysis_micro.cpp.o"
  "CMakeFiles/analysis_micro.dir/analysis_micro.cpp.o.d"
  "analysis_micro"
  "analysis_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
