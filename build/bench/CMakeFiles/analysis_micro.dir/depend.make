# Empty dependencies file for analysis_micro.
# This may be replaced when dependencies are built.
