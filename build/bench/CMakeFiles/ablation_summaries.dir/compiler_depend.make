# Empty compiler generated dependencies file for ablation_summaries.
# This may be replaced when dependencies are built.
