file(REMOVE_RECURSE
  "CMakeFiles/ablation_summaries.dir/ablation_summaries.cpp.o"
  "CMakeFiles/ablation_summaries.dir/ablation_summaries.cpp.o.d"
  "ablation_summaries"
  "ablation_summaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_summaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
