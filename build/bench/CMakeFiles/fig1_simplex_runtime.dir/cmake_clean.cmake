file(REMOVE_RECURSE
  "CMakeFiles/fig1_simplex_runtime.dir/fig1_simplex_runtime.cpp.o"
  "CMakeFiles/fig1_simplex_runtime.dir/fig1_simplex_runtime.cpp.o.d"
  "fig1_simplex_runtime"
  "fig1_simplex_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_simplex_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
