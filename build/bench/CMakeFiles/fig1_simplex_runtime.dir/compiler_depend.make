# Empty compiler generated dependencies file for fig1_simplex_runtime.
# This may be replaced when dependencies are built.
