# Empty dependencies file for analysis_unit_test.
# This may be replaced when dependencies are built.
