file(REMOVE_RECURSE
  "CMakeFiles/analysis_unit_test.dir/analysis_unit_test.cpp.o"
  "CMakeFiles/analysis_unit_test.dir/analysis_unit_test.cpp.o.d"
  "analysis_unit_test"
  "analysis_unit_test.pdb"
  "analysis_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
