
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/safeflow/CMakeFiles/sf_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/annotations/CMakeFiles/sf_annotations.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/sf_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/simplex/CMakeFiles/sf_simplex.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/sf_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
