file(REMOVE_RECURSE
  "CMakeFiles/indirect_call_test.dir/indirect_call_test.cpp.o"
  "CMakeFiles/indirect_call_test.dir/indirect_call_test.cpp.o.d"
  "indirect_call_test"
  "indirect_call_test.pdb"
  "indirect_call_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indirect_call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
