# Empty compiler generated dependencies file for indirect_call_test.
# This may be replaced when dependencies are built.
