# Empty dependencies file for frontend2_test.
# This may be replaced when dependencies are built.
