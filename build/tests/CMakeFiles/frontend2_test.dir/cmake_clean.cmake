file(REMOVE_RECURSE
  "CMakeFiles/frontend2_test.dir/frontend2_test.cpp.o"
  "CMakeFiles/frontend2_test.dir/frontend2_test.cpp.o.d"
  "frontend2_test"
  "frontend2_test.pdb"
  "frontend2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
