file(REMOVE_RECURSE
  "CMakeFiles/taint_unit_test.dir/taint_unit_test.cpp.o"
  "CMakeFiles/taint_unit_test.dir/taint_unit_test.cpp.o.d"
  "taint_unit_test"
  "taint_unit_test.pdb"
  "taint_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taint_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
