# Empty compiler generated dependencies file for taint_unit_test.
# This may be replaced when dependencies are built.
