file(REMOVE_RECURSE
  "CMakeFiles/corpus_compile_test.dir/corpus_compile_test.cpp.o"
  "CMakeFiles/corpus_compile_test.dir/corpus_compile_test.cpp.o.d"
  "corpus_compile_test"
  "corpus_compile_test.pdb"
  "corpus_compile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
