# Empty compiler generated dependencies file for fp_reduction_test.
# This may be replaced when dependencies are built.
