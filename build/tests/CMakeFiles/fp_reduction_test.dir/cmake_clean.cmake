file(REMOVE_RECURSE
  "CMakeFiles/fp_reduction_test.dir/fp_reduction_test.cpp.o"
  "CMakeFiles/fp_reduction_test.dir/fp_reduction_test.cpp.o.d"
  "fp_reduction_test"
  "fp_reduction_test.pdb"
  "fp_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
