file(REMOVE_RECURSE
  "CMakeFiles/initcheck_test.dir/initcheck_test.cpp.o"
  "CMakeFiles/initcheck_test.dir/initcheck_test.cpp.o.d"
  "initcheck_test"
  "initcheck_test.pdb"
  "initcheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
