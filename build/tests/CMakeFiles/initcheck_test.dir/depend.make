# Empty dependencies file for initcheck_test.
# This may be replaced when dependencies are built.
