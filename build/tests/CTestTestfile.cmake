# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/preprocessor_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/affine_test[1]_include.cmake")
include("/root/repo/build/tests/numerics_test[1]_include.cmake")
include("/root/repo/build/tests/simplex_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/messaging_test[1]_include.cmake")
include("/root/repo/build/tests/annotation_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_unit_test[1]_include.cmake")
include("/root/repo/build/tests/frontend2_test[1]_include.cmake")
include("/root/repo/build/tests/taint_unit_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/initcheck_test[1]_include.cmake")
include("/root/repo/build/tests/indirect_call_test[1]_include.cmake")
include("/root/repo/build/tests/fp_reduction_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_compile_test[1]_include.cmake")
