file(REMOVE_RECURSE
  "CMakeFiles/sf_simplex.dir/controllers.cpp.o"
  "CMakeFiles/sf_simplex.dir/controllers.cpp.o.d"
  "CMakeFiles/sf_simplex.dir/fault_injection.cpp.o"
  "CMakeFiles/sf_simplex.dir/fault_injection.cpp.o.d"
  "CMakeFiles/sf_simplex.dir/monitor.cpp.o"
  "CMakeFiles/sf_simplex.dir/monitor.cpp.o.d"
  "CMakeFiles/sf_simplex.dir/plant.cpp.o"
  "CMakeFiles/sf_simplex.dir/plant.cpp.o.d"
  "CMakeFiles/sf_simplex.dir/runtime.cpp.o"
  "CMakeFiles/sf_simplex.dir/runtime.cpp.o.d"
  "CMakeFiles/sf_simplex.dir/shared_memory.cpp.o"
  "CMakeFiles/sf_simplex.dir/shared_memory.cpp.o.d"
  "libsf_simplex.a"
  "libsf_simplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
