# Empty compiler generated dependencies file for sf_simplex.
# This may be replaced when dependencies are built.
