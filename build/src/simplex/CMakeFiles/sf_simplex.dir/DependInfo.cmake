
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simplex/controllers.cpp" "src/simplex/CMakeFiles/sf_simplex.dir/controllers.cpp.o" "gcc" "src/simplex/CMakeFiles/sf_simplex.dir/controllers.cpp.o.d"
  "/root/repo/src/simplex/fault_injection.cpp" "src/simplex/CMakeFiles/sf_simplex.dir/fault_injection.cpp.o" "gcc" "src/simplex/CMakeFiles/sf_simplex.dir/fault_injection.cpp.o.d"
  "/root/repo/src/simplex/monitor.cpp" "src/simplex/CMakeFiles/sf_simplex.dir/monitor.cpp.o" "gcc" "src/simplex/CMakeFiles/sf_simplex.dir/monitor.cpp.o.d"
  "/root/repo/src/simplex/plant.cpp" "src/simplex/CMakeFiles/sf_simplex.dir/plant.cpp.o" "gcc" "src/simplex/CMakeFiles/sf_simplex.dir/plant.cpp.o.d"
  "/root/repo/src/simplex/runtime.cpp" "src/simplex/CMakeFiles/sf_simplex.dir/runtime.cpp.o" "gcc" "src/simplex/CMakeFiles/sf_simplex.dir/runtime.cpp.o.d"
  "/root/repo/src/simplex/shared_memory.cpp" "src/simplex/CMakeFiles/sf_simplex.dir/shared_memory.cpp.o" "gcc" "src/simplex/CMakeFiles/sf_simplex.dir/shared_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/sf_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
