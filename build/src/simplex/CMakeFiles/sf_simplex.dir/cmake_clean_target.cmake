file(REMOVE_RECURSE
  "libsf_simplex.a"
)
