file(REMOVE_RECURSE
  "CMakeFiles/sf_support.dir/diagnostics.cpp.o"
  "CMakeFiles/sf_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/sf_support.dir/loc_counter.cpp.o"
  "CMakeFiles/sf_support.dir/loc_counter.cpp.o.d"
  "CMakeFiles/sf_support.dir/metrics.cpp.o"
  "CMakeFiles/sf_support.dir/metrics.cpp.o.d"
  "CMakeFiles/sf_support.dir/source_manager.cpp.o"
  "CMakeFiles/sf_support.dir/source_manager.cpp.o.d"
  "CMakeFiles/sf_support.dir/string_utils.cpp.o"
  "CMakeFiles/sf_support.dir/string_utils.cpp.o.d"
  "CMakeFiles/sf_support.dir/text_diff.cpp.o"
  "CMakeFiles/sf_support.dir/text_diff.cpp.o.d"
  "libsf_support.a"
  "libsf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
