file(REMOVE_RECURSE
  "libsf_cfront.a"
)
