# Empty compiler generated dependencies file for sf_cfront.
# This may be replaced when dependencies are built.
