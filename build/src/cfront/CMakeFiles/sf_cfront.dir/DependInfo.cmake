
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfront/ast.cpp" "src/cfront/CMakeFiles/sf_cfront.dir/ast.cpp.o" "gcc" "src/cfront/CMakeFiles/sf_cfront.dir/ast.cpp.o.d"
  "/root/repo/src/cfront/frontend.cpp" "src/cfront/CMakeFiles/sf_cfront.dir/frontend.cpp.o" "gcc" "src/cfront/CMakeFiles/sf_cfront.dir/frontend.cpp.o.d"
  "/root/repo/src/cfront/lexer.cpp" "src/cfront/CMakeFiles/sf_cfront.dir/lexer.cpp.o" "gcc" "src/cfront/CMakeFiles/sf_cfront.dir/lexer.cpp.o.d"
  "/root/repo/src/cfront/parser.cpp" "src/cfront/CMakeFiles/sf_cfront.dir/parser.cpp.o" "gcc" "src/cfront/CMakeFiles/sf_cfront.dir/parser.cpp.o.d"
  "/root/repo/src/cfront/preprocessor.cpp" "src/cfront/CMakeFiles/sf_cfront.dir/preprocessor.cpp.o" "gcc" "src/cfront/CMakeFiles/sf_cfront.dir/preprocessor.cpp.o.d"
  "/root/repo/src/cfront/types.cpp" "src/cfront/CMakeFiles/sf_cfront.dir/types.cpp.o" "gcc" "src/cfront/CMakeFiles/sf_cfront.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
