file(REMOVE_RECURSE
  "CMakeFiles/sf_cfront.dir/ast.cpp.o"
  "CMakeFiles/sf_cfront.dir/ast.cpp.o.d"
  "CMakeFiles/sf_cfront.dir/frontend.cpp.o"
  "CMakeFiles/sf_cfront.dir/frontend.cpp.o.d"
  "CMakeFiles/sf_cfront.dir/lexer.cpp.o"
  "CMakeFiles/sf_cfront.dir/lexer.cpp.o.d"
  "CMakeFiles/sf_cfront.dir/parser.cpp.o"
  "CMakeFiles/sf_cfront.dir/parser.cpp.o.d"
  "CMakeFiles/sf_cfront.dir/preprocessor.cpp.o"
  "CMakeFiles/sf_cfront.dir/preprocessor.cpp.o.d"
  "CMakeFiles/sf_cfront.dir/types.cpp.o"
  "CMakeFiles/sf_cfront.dir/types.cpp.o.d"
  "libsf_cfront.a"
  "libsf_cfront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_cfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
