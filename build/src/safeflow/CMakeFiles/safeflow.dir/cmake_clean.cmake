file(REMOVE_RECURSE
  "CMakeFiles/safeflow.dir/safeflow_main.cpp.o"
  "CMakeFiles/safeflow.dir/safeflow_main.cpp.o.d"
  "safeflow"
  "safeflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safeflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
