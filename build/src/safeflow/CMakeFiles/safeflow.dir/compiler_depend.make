# Empty compiler generated dependencies file for safeflow.
# This may be replaced when dependencies are built.
