file(REMOVE_RECURSE
  "CMakeFiles/sf_driver.dir/corpus_info.cpp.o"
  "CMakeFiles/sf_driver.dir/corpus_info.cpp.o.d"
  "CMakeFiles/sf_driver.dir/driver.cpp.o"
  "CMakeFiles/sf_driver.dir/driver.cpp.o.d"
  "libsf_driver.a"
  "libsf_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
