# Empty dependencies file for sf_driver.
# This may be replaced when dependencies are built.
