file(REMOVE_RECURSE
  "libsf_driver.a"
)
