# CMake generated Testfile for 
# Source directory: /root/repo/src/safeflow
# Build directory: /root/repo/build/src/safeflow
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
