file(REMOVE_RECURSE
  "CMakeFiles/sf_numerics.dir/integrate.cpp.o"
  "CMakeFiles/sf_numerics.dir/integrate.cpp.o.d"
  "CMakeFiles/sf_numerics.dir/matrix.cpp.o"
  "CMakeFiles/sf_numerics.dir/matrix.cpp.o.d"
  "CMakeFiles/sf_numerics.dir/riccati.cpp.o"
  "CMakeFiles/sf_numerics.dir/riccati.cpp.o.d"
  "libsf_numerics.a"
  "libsf_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
