# Empty compiler generated dependencies file for sf_numerics.
# This may be replaced when dependencies are built.
