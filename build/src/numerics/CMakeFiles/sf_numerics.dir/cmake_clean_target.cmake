file(REMOVE_RECURSE
  "libsf_numerics.a"
)
