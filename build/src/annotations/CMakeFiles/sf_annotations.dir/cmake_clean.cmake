file(REMOVE_RECURSE
  "CMakeFiles/sf_annotations.dir/annotation.cpp.o"
  "CMakeFiles/sf_annotations.dir/annotation.cpp.o.d"
  "libsf_annotations.a"
  "libsf_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
