# Empty dependencies file for sf_annotations.
# This may be replaced when dependencies are built.
