file(REMOVE_RECURSE
  "libsf_annotations.a"
)
