
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/annotations/annotation.cpp" "src/annotations/CMakeFiles/sf_annotations.dir/annotation.cpp.o" "gcc" "src/annotations/CMakeFiles/sf_annotations.dir/annotation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfront/CMakeFiles/sf_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
