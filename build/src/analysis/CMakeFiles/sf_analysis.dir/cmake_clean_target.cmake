file(REMOVE_RECURSE
  "libsf_analysis.a"
)
