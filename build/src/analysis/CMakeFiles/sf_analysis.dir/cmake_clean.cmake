file(REMOVE_RECURSE
  "CMakeFiles/sf_analysis.dir/affine.cpp.o"
  "CMakeFiles/sf_analysis.dir/affine.cpp.o.d"
  "CMakeFiles/sf_analysis.dir/alias.cpp.o"
  "CMakeFiles/sf_analysis.dir/alias.cpp.o.d"
  "CMakeFiles/sf_analysis.dir/control_dep.cpp.o"
  "CMakeFiles/sf_analysis.dir/control_dep.cpp.o.d"
  "CMakeFiles/sf_analysis.dir/report.cpp.o"
  "CMakeFiles/sf_analysis.dir/report.cpp.o.d"
  "CMakeFiles/sf_analysis.dir/restrictions.cpp.o"
  "CMakeFiles/sf_analysis.dir/restrictions.cpp.o.d"
  "CMakeFiles/sf_analysis.dir/shm_propagation.cpp.o"
  "CMakeFiles/sf_analysis.dir/shm_propagation.cpp.o.d"
  "CMakeFiles/sf_analysis.dir/shm_regions.cpp.o"
  "CMakeFiles/sf_analysis.dir/shm_regions.cpp.o.d"
  "CMakeFiles/sf_analysis.dir/taint.cpp.o"
  "CMakeFiles/sf_analysis.dir/taint.cpp.o.d"
  "libsf_analysis.a"
  "libsf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
