
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/affine.cpp" "src/analysis/CMakeFiles/sf_analysis.dir/affine.cpp.o" "gcc" "src/analysis/CMakeFiles/sf_analysis.dir/affine.cpp.o.d"
  "/root/repo/src/analysis/alias.cpp" "src/analysis/CMakeFiles/sf_analysis.dir/alias.cpp.o" "gcc" "src/analysis/CMakeFiles/sf_analysis.dir/alias.cpp.o.d"
  "/root/repo/src/analysis/control_dep.cpp" "src/analysis/CMakeFiles/sf_analysis.dir/control_dep.cpp.o" "gcc" "src/analysis/CMakeFiles/sf_analysis.dir/control_dep.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/sf_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/sf_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/restrictions.cpp" "src/analysis/CMakeFiles/sf_analysis.dir/restrictions.cpp.o" "gcc" "src/analysis/CMakeFiles/sf_analysis.dir/restrictions.cpp.o.d"
  "/root/repo/src/analysis/shm_propagation.cpp" "src/analysis/CMakeFiles/sf_analysis.dir/shm_propagation.cpp.o" "gcc" "src/analysis/CMakeFiles/sf_analysis.dir/shm_propagation.cpp.o.d"
  "/root/repo/src/analysis/shm_regions.cpp" "src/analysis/CMakeFiles/sf_analysis.dir/shm_regions.cpp.o" "gcc" "src/analysis/CMakeFiles/sf_analysis.dir/shm_regions.cpp.o.d"
  "/root/repo/src/analysis/taint.cpp" "src/analysis/CMakeFiles/sf_analysis.dir/taint.cpp.o" "gcc" "src/analysis/CMakeFiles/sf_analysis.dir/taint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/annotations/CMakeFiles/sf_annotations.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/sf_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
