# Empty dependencies file for sf_analysis.
# This may be replaced when dependencies are built.
