file(REMOVE_RECURSE
  "libsf_ir.a"
)
