file(REMOVE_RECURSE
  "CMakeFiles/sf_ir.dir/callgraph.cpp.o"
  "CMakeFiles/sf_ir.dir/callgraph.cpp.o.d"
  "CMakeFiles/sf_ir.dir/dominators.cpp.o"
  "CMakeFiles/sf_ir.dir/dominators.cpp.o.d"
  "CMakeFiles/sf_ir.dir/ir.cpp.o"
  "CMakeFiles/sf_ir.dir/ir.cpp.o.d"
  "CMakeFiles/sf_ir.dir/lowering.cpp.o"
  "CMakeFiles/sf_ir.dir/lowering.cpp.o.d"
  "CMakeFiles/sf_ir.dir/printer.cpp.o"
  "CMakeFiles/sf_ir.dir/printer.cpp.o.d"
  "CMakeFiles/sf_ir.dir/ssa.cpp.o"
  "CMakeFiles/sf_ir.dir/ssa.cpp.o.d"
  "libsf_ir.a"
  "libsf_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
