
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/callgraph.cpp" "src/ir/CMakeFiles/sf_ir.dir/callgraph.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/callgraph.cpp.o.d"
  "/root/repo/src/ir/dominators.cpp" "src/ir/CMakeFiles/sf_ir.dir/dominators.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/dominators.cpp.o.d"
  "/root/repo/src/ir/ir.cpp" "src/ir/CMakeFiles/sf_ir.dir/ir.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/ir.cpp.o.d"
  "/root/repo/src/ir/lowering.cpp" "src/ir/CMakeFiles/sf_ir.dir/lowering.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/lowering.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/sf_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/ssa.cpp" "src/ir/CMakeFiles/sf_ir.dir/ssa.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/ssa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfront/CMakeFiles/sf_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/annotations/CMakeFiles/sf_annotations.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
