// The §3.4.3 extension in action: a core component receiving commands
// over sockets. The descriptor talking to the non-core planner is
// annotated noncore; SafeFlow flags the unmonitored use and accepts the
// monitored one.
//
//   $ ./build/examples/message_passing_demo
#include <iostream>

#include "safeflow/driver.h"

int main() {
  const char* source = R"(
typedef struct Cmd { float thrust; float heading; int checksum; } Cmd;

int plannerSock;   /* talks to the experimental route planner (non-core) */
int gpsSock;       /* talks to the certified GPS unit (core)             */

extern int recv(int socket, void *buffer, int length, int flags);
extern int openChannel(int port);
extern void applyThrust(float t);
extern void applyHeading(float h);

void initChannels(void)
{
    plannerSock = openChannel(7001);
    gpsSock = openChannel(7002);
    /*** SafeFlow Annotation assume(noncore(plannerSock)) ***/
}

/* Monitoring function for planner messages: checksum and range checks
 * before anything escapes. */
float checkedThrust(Cmd *m)
/*** SafeFlow Annotation assume(core(m, 0, sizeof(Cmd))) ***/
{
    if (m->checksum != 42) { return 0.0f; }
    if (m->thrust < 0.0f || m->thrust > 1.0f) { return 0.0f; }
    return m->thrust;
}

int main(void)
{
    Cmd planned;
    Cmd gps;
    float thrust;
    float heading;

    initChannels();
    recv(plannerSock, &planned, sizeof(Cmd), 0);
    recv(gpsSock, &gps, sizeof(Cmd), 0);

    thrust = checkedThrust(&planned);   /* monitored: fine            */
    heading = planned.heading;          /* BUG: unmonitored use        */

    /*** SafeFlow Annotation assert(safe(thrust)); ***/
    applyThrust(thrust);
    /*** SafeFlow Annotation assert(safe(heading)); ***/
    applyHeading(heading + gps.heading); /* gps channel is trusted     */
    return 0;
}
)";

  safeflow::SafeFlowDriver driver;
  driver.addSource("rover.c", source);
  const auto& report = driver.analyze();
  std::cout << report.render(driver.sources());

  std::cout << "\nWhat to look for:\n"
               "  * 'thrust' passes: checkedThrust is a monitoring "
               "function for received data;\n"
               "  * 'heading' fails: planned.heading is used without any "
               "check — the error cites\n"
               "    the plannerSock channel;\n"
               "  * the GPS read is clean: its descriptor was never "
               "annotated noncore (the paper\n"
               "    assumes run-time authentication for core peers).\n";

  bool heading_flagged = false;
  for (const auto& e : report.errors) {
    if (e.critical_value == "heading") heading_flagged = true;
    if (e.critical_value == "thrust") {
      std::cerr << "unexpected: monitored thrust flagged\n";
      return 1;
    }
  }
  return heading_flagged ? 0 : 1;
}
