// Quickstart: analyze an annotated C snippet with the SafeFlow public API.
//
//   $ ./build/examples/quickstart
//
// The snippet declares one non-core shared-memory region, monitors it in
// one function, and (deliberately) reads it unmonitored in another; the
// report shows the warning and the resulting critical-data error.
#include <iostream>

#include "safeflow/driver.h"

int main() {
  const char* source = R"(
typedef struct Telemetry { float speed; float heading; } Telemetry;

Telemetry *telemShm;

extern void *shmat(int id, void *addr, int flags);
extern int shmget(int key, int size, int flags);
extern void steer(float heading);

/*** SafeFlow Annotation shminit ***/
void initComm(void)
{
    telemShm = (Telemetry *) shmat(shmget(9, sizeof(Telemetry), 0), 0, 0);
    /*** SafeFlow Annotation assume(shmvar(telemShm, sizeof(Telemetry))) ***/
    /*** SafeFlow Annotation assume(noncore(telemShm)) ***/
}

/* Monitoring function: heading is range-checked before use. */
float monitoredHeading(void)
/*** SafeFlow Annotation assume(core(telemShm, 0, sizeof(Telemetry))) ***/
{
    float h;
    h = telemShm->heading;
    if (h < -3.15f || h > 3.15f) {
        return 0.0f;
    }
    return h;
}

/* BUG: reads the same region without any check. */
float rawSpeed(void)
{
    return telemShm->speed;
}

int main(void)
{
    float command;
    initComm();
    command = monitoredHeading() + 0.001f * rawSpeed();
    /*** SafeFlow Annotation assert(safe(command)); ***/
    steer(command);
    return 0;
}
)";

  safeflow::SafeFlowDriver driver;
  driver.addSource("quickstart.c", source);
  const auto& report = driver.analyze();

  std::cout << report.render(driver.sources());
  std::cout << "\nWhat to look for:\n"
               "  * the warning on rawSpeed(): an unmonitored read of the "
               "non-core region;\n"
               "  * the error on assert(safe(command)): the critical value "
               "depends on it;\n"
               "  * no complaint about monitoredHeading(): the "
               "assume(core(...)) annotation\n"
               "    declares the range check, so its read is safe.\n";
  return report.errors.empty() ? 1 : 0;  // the bug is expected to be found
}
