// The Generic Simplex defect, end to end: SafeFlow finds the erroneous
// value dependency statically, and the same defect is exploitable in the
// executable runtime (the rig-feedback injector defeats a decision module
// that re-reads feedback from shared memory).
//
//   $ ./build/examples/attack_demo
#include <iostream>
#include <string>

#include "safeflow/corpus_info.h"
#include "safeflow/driver.h"
#include "simplex/runtime.h"

int main() {
  using namespace safeflow;

  std::cout << "== 1. static analysis of the Generic Simplex core ==\n\n";
  SafeFlowDriver driver(corpusAnalysisOptions());
  for (const CorpusSystem& sys : corpusSystems(SAFEFLOW_CORPUS_DIR)) {
    if (sys.name != "generic_simplex") continue;
    for (const std::string& f : sys.core_files) driver.addFile(f);
  }
  const auto& report = driver.analyze();
  bool found_static = false;
  for (const auto& e : report.errors) {
    if (e.kind != analysis::CriticalDependencyError::Kind::kData) continue;
    for (const auto& r : e.region_names) {
      if (r == "fbShm") {
        found_static = true;
        std::cout << "SafeFlow: critical value '" << e.critical_value
                  << "' depends on the feedback region written by the "
                     "core and read back through shared memory\n";
        for (const auto& loc : e.source_loads) {
          std::cout << "  source load: "
                    << driver.sources().describe(loc) << "\n";
        }
      }
    }
  }
  std::cout << (found_static ? "\n-> the rig-feedback dependency is "
                               "detected statically.\n"
                             : "\n-> MISSING static detection!\n");

  std::cout << "\n== 2. the same defect, exploited at run time ==\n\n";
  using namespace safeflow::simplex;
  for (const bool vulnerable : {true, false}) {
    InvertedPendulum plant;
    RuntimeConfig config;
    config.duration = 20.0;
    config.controller_fault = FaultMode::kRail;
    config.shm_fault = ShmFault::kRigFeedback;
    config.vulnerable_decision = vulnerable;
    SimplexRuntime rt(plant, config);
    const RuntimeStats stats = rt.run();
    std::cout << (vulnerable ? "vulnerable decision module "
                             : "fixed decision module      ")
              << (stats.remained_safe ? "-> plant stayed safe"
                                      : "-> PLANT FELL OVER")
              << "  (" << stats.summary() << ")\n";
  }

  std::cout << "\nthe monitor must evaluate recoverability against the "
               "core's own sensor copies,\nnot values re-read from shared "
               "memory — exactly what the SafeFlow warning points at.\n";
  return found_static ? 0 : 1;
}
