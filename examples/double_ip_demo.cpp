// The double inverted pendulum under the Simplex runtime: balances the
// two-link plant with the safety controller while the experimental
// controller runs through the monitor, across a sweep of fault modes.
//
//   $ ./build/examples/double_ip_demo
#include <iostream>

#include "simplex/runtime.h"

int main() {
  using namespace safeflow::simplex;

  std::cout << "double inverted pendulum under Simplex (15 s runs)\n\n";

  const FaultMode faults[] = {FaultMode::kNone, FaultMode::kRail,
                              FaultMode::kNaN, FaultMode::kNoisy};
  bool all_safe = true;
  for (FaultMode fault : faults) {
    DoubleInvertedPendulum plant;
    RuntimeConfig config;
    config.duration = 15.0;
    config.controller_fault = fault;
    SimplexRuntime rt(plant, config);
    const RuntimeStats stats = rt.run();
    std::cout.width(10);
    std::cout << faultModeName(fault) << "  " << stats.summary() << "\n";
    all_safe &= stats.remained_safe;
  }

  std::cout << (all_safe ? "\nboth links stayed within their safe range "
                           "in every scenario.\n"
                         : "\na link left its safe range!\n");
  return all_safe ? 0 : 1;
}
