// The paper's Fig. 1 system, runnable: an inverted pendulum balanced by
// the Simplex architecture. The non-core controller is configurable to
// misbehave; the stability-envelope monitor keeps the plant recoverable.
//
//   $ ./build/examples/ip_simplex_demo [none|overdrive|rail|nan|stuck|noisy|delayed]
#include <cstring>
#include <iostream>

#include "simplex/runtime.h"

int main(int argc, char** argv) {
  using namespace safeflow::simplex;

  FaultMode fault = FaultMode::kRail;
  if (argc > 1) {
    const char* f = argv[1];
    if (std::strcmp(f, "none") == 0) fault = FaultMode::kNone;
    else if (std::strcmp(f, "overdrive") == 0) fault = FaultMode::kOverdrive;
    else if (std::strcmp(f, "rail") == 0) fault = FaultMode::kRail;
    else if (std::strcmp(f, "nan") == 0) fault = FaultMode::kNaN;
    else if (std::strcmp(f, "stuck") == 0) fault = FaultMode::kStuck;
    else if (std::strcmp(f, "noisy") == 0) fault = FaultMode::kNoisy;
    else if (std::strcmp(f, "delayed") == 0) fault = FaultMode::kDelayed;
    else {
      std::cerr << "unknown fault '" << f << "'\n";
      return 2;
    }
  }

  InvertedPendulum plant;
  RuntimeConfig config;
  config.duration = 30.0;
  config.controller_fault = fault;

  std::cout << "inverted pendulum under Simplex; non-core fault: "
            << faultModeName(fault) << " (onset t=5s)\n\n";

  SimplexRuntime runtime(plant, config);
  const RuntimeStats stats = runtime.run();

  std::cout << "|pendulum angle| over time (one row per 0.5 s):\n";
  for (std::size_t i = 0; i < stats.angle_trace.size(); ++i) {
    const double angle = stats.angle_trace[i];
    const int cells = static_cast<int>(angle * 200.0);
    std::cout.width(5);
    std::cout << i * 0.5 << "s |";
    for (int c = 0; c < cells && c < 60; ++c) std::cout << '#';
    std::cout << " " << angle << "\n";
  }

  std::cout << "\n" << stats.summary() << "\n";
  std::cout << (stats.remained_safe
                    ? "the monitor kept the pendulum recoverable.\n"
                    : "the pendulum left its safe range!\n");
  return stats.remained_safe ? 0 : 1;
}
