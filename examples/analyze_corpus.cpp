// Analyze one of the evaluation corpora (or your own file list) and print
// the full SafeFlow report.
//
//   $ ./build/examples/analyze_corpus ip
//   $ ./build/examples/analyze_corpus generic_simplex
//   $ ./build/examples/analyze_corpus double_ip
//   $ ./build/examples/analyze_corpus --files core1.c core2.c
#include <cstring>
#include <iostream>
#include <string>

#include "safeflow/corpus_info.h"
#include "safeflow/driver.h"

int main(int argc, char** argv) {
  using namespace safeflow;

  SafeFlowDriver driver(corpusAnalysisOptions());

  if (argc >= 3 && std::strcmp(argv[1], "--files") == 0) {
    for (int i = 2; i < argc; ++i) {
      if (!driver.addFile(argv[i])) {
        std::cerr << "cannot parse " << argv[i] << "\n";
      }
    }
  } else {
    const std::string which = argc > 1 ? argv[1] : "ip";
    bool found = false;
    for (const CorpusSystem& sys : corpusSystems(SAFEFLOW_CORPUS_DIR)) {
      if (sys.name != which) continue;
      found = true;
      std::cout << "analyzing the core component of '" << sys.display_name
                << "' (" << sys.core_files.size() << " files)\n\n";
      for (const std::string& f : sys.core_files) driver.addFile(f);
    }
    if (!found) {
      std::cerr << "unknown system '" << which
                << "' (use ip | generic_simplex | double_ip)\n";
      return 2;
    }
  }

  const auto& report = driver.analyze();
  if (driver.hasFrontendErrors()) {
    std::cerr << driver.diagnostics().render(driver.sources());
    return 2;
  }
  std::cout << report.render(driver.sources());

  // The registry-backed stats table: per-phase wall times and every
  // pipeline counter, the same numbers `safeflow --stats` prints.
  std::cout << "\n" << driver.stats().renderTable();
  return 0;
}
